#ifndef AQV_STORAGE_WAL_H_
#define AQV_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/metrics.h"
#include "base/result.h"
#include "base/status.h"

namespace aqv {

/// The write-ahead log: an append-only file of checksummed commit records,
/// one per `Database::PutAll` epoch. A commit is durable once AppendCommit
/// returns OK — the record is fully written and (with fsync_on_commit)
/// fsynced before the in-memory publication happens, so recovery can always
/// replay every acknowledged commit since the last checkpoint.
///
/// Record framing: u32 magic, u32 payload length, u64 payload checksum,
/// payload bytes. ReadLog stops at the first torn or corrupt record (a
/// crash mid-append), dropping it and everything after — exactly the
/// none-or-all contract a half-written commit deserves.
///
/// Failure contract (fail-stop): once any append fails — a real I/O error
/// or the `wal.append`/`wal.fsync` failpoints — the writer refuses all
/// further appends with kUnavailable. A failed append may have left
/// a torn record at the tail; appending after it would put good records
/// beyond the tear where ReadLog never looks. Restart-and-recover is the
/// only way back, which is also what a real fsync failure demands.
///
/// The `wal.append` failpoint fires *after* a partial prefix of the record
/// is written, deliberately manufacturing the torn-tail state a kill mid-
/// pwrite leaves behind; `wal.fsync` fires after the full record is written
/// but before the fsync (commit not acknowledged, may still survive).
class LogWriter {
 public:
  static constexpr uint32_t kRecordMagic = 0x4c575141;  // "AQWL"
  static constexpr size_t kRecordHeaderSize = 16;

  /// Opens (creating if absent) the log at `path`, positioned at its end.
  /// When the file is longer than `valid_prefix_bytes` (the clean prefix
  /// ReadLog reported), the excess — a torn record from a crash mid-append
  /// — is truncated away first; appending after a tear would hide every
  /// later record from the reader.
  static Result<std::unique_ptr<LogWriter>> Open(
      const std::string& path, bool fsync_on_commit,
      uint64_t valid_prefix_bytes = UINT64_MAX);
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Appends one commit record and makes it durable (see the class
  /// comment). Thread-compatibility: the engine serializes appends under
  /// its commit mutex.
  Status AppendCommit(std::string_view payload);

  /// The two halves of AppendCommit, split so the engine's group commit can
  /// coalesce many appended records under ONE Sync(): Append writes the
  /// framed record (and evaluates `wal.append`), Sync makes everything
  /// appended so far durable (and evaluates `wal.fsync`). Both fail-stop
  /// the writer on error exactly like AppendCommit. The engine serializes
  /// Append calls; Sync may run from a group-commit leader while no append
  /// is in flight (the engine's offset protocol guarantees that).
  Status Append(std::string_view payload);
  Status Sync();

  /// Truncates the log to empty — the checkpoint's final step. Failure
  /// here does NOT poison the writer: stale records are skipped at replay
  /// by commit sequence number.
  Status Truncate();

  /// Bytes currently in the log file.
  uint64_t size_bytes() const { return offset_; }

  bool failed() const { return failed_; }

  /// Attaches counters for appended bytes and fsyncs, plus a latency
  /// histogram fed the duration of every commit fsync (each may be null).
  void SetMetrics(Counter* wal_bytes, Counter* wal_fsyncs,
                  Counter* wal_records,
                  LatencyHistogram* fsync_latency = nullptr) {
    wal_bytes_ = wal_bytes;
    wal_fsyncs_ = wal_fsyncs;
    wal_records_ = wal_records;
    fsync_latency_ = fsync_latency;
  }

  /// Bytes the record framing added to the last successful AppendCommit
  /// (header + payload) — what per-statement attribution charges.
  uint64_t last_record_bytes() const { return last_record_bytes_; }

 private:
  LogWriter(std::string path, int fd, uint64_t offset, bool fsync_on_commit)
      : path_(std::move(path)),
        fd_(fd),
        offset_(offset),
        fsync_on_commit_(fsync_on_commit) {}

  Status WriteAll(const char* data, size_t size);

  std::string path_;
  int fd_ = -1;
  uint64_t offset_ = 0;
  bool fsync_on_commit_ = true;
  bool failed_ = false;
  uint64_t last_record_bytes_ = 0;
  Counter* wal_bytes_ = nullptr;
  Counter* wal_fsyncs_ = nullptr;
  Counter* wal_records_ = nullptr;
  LatencyHistogram* fsync_latency_ = nullptr;
};

/// What ReadLog recovered: the intact record payloads plus the byte length
/// of the clean prefix they came from (pass it to LogWriter::Open so a torn
/// tail is chopped before new appends).
///
/// A bad record at the very end of the file is a torn tail — the expected
/// debris of a crash mid-append, handled silently. A bad record *followed
/// by* intact records is something else entirely: bit rot or a torn sector
/// in the middle of the log. Those later records cannot be applied (the
/// commit between them and the clean prefix is lost), so they are returned
/// separately as `suspect_payloads` with `mid_log_corruption` set — the
/// engine quarantines every table the log names rather than serve rows
/// missing an acknowledged commit.
struct WalContents {
  std::vector<std::string> payloads;
  uint64_t valid_bytes = 0;
  bool mid_log_corruption = false;
  std::vector<std::string> suspect_payloads;
};

/// Reads every intact record payload from the log at `path`, oldest first,
/// stopping (without error) at the first torn or corrupt record, then
/// resyncing on the record magic to detect intact records beyond a mid-log
/// tear (see WalContents). A missing file reads as an empty log.
Result<WalContents> ReadLog(const std::string& path);

}  // namespace aqv

#endif  // AQV_STORAGE_WAL_H_
