#include "storage/buffer_pool.h"

#include <algorithm>

namespace aqv {

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(std::max<size_t>(capacity, 2)) {
  frames_.reserve(capacity_);
}

void BufferPool::Touch(size_t frame_index) {
  auto it = lru_pos_.find(frame_index);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(frame_index);
  lru_pos_[frame_index] = lru_.begin();
}

Status BufferPool::FlushFrame(Frame* frame) {
  if (!frame->dirty) return Status::OK();
  frame->page.UpdateChecksum();
  AQV_RETURN_NOT_OK(disk_->WritePage(frame->page_id, frame->page));
  frame->dirty = false;
  return Status::OK();
}

Result<size_t> BufferPool::VictimFrame() {
  if (frames_.size() < capacity_) {
    frames_.push_back(std::make_unique<Frame>());
    return frames_.size() - 1;
  }
  // Walk from least- to most-recently-used looking for an unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    Frame* frame = frames_[*it].get();
    if (frame->pins > 0) continue;
    AQV_RETURN_NOT_OK(FlushFrame(frame));
    page_to_frame_.erase(frame->page_id);
    frame->in_use = false;
    ++evictions_;
    return *it;
  }
  return Status::ResourceExhausted(
      "buffer pool: all " + std::to_string(capacity_) + " frames pinned");
}

Result<Page*> BufferPool::FetchPage(uint32_t page_id) {
  auto it = page_to_frame_.find(page_id);
  if (it != page_to_frame_.end()) {
    ++hits_;
    Frame* frame = frames_[it->second].get();
    ++frame->pins;
    Touch(it->second);
    return &frame->page;
  }
  ++misses_;
  AQV_ASSIGN_OR_RETURN(size_t index, VictimFrame());
  Frame* frame = frames_[index].get();
  AQV_RETURN_NOT_OK(disk_->ReadPage(page_id, &frame->page));
  frame->page_id = page_id;
  frame->pins = 1;
  frame->dirty = false;
  frame->in_use = true;
  page_to_frame_[page_id] = index;
  Touch(index);
  return &frame->page;
}

Result<Page*> BufferPool::NewPage(uint32_t page_id) {
  auto it = page_to_frame_.find(page_id);
  if (it != page_to_frame_.end()) {
    // Re-initializing a cached page id (shadow reuse across checkpoints).
    Frame* frame = frames_[it->second].get();
    if (frame->pins > 0) {
      return Status::Internal("NewPage over pinned page " +
                              std::to_string(page_id));
    }
    frame->page.Init(page_id);
    frame->pins = 1;
    frame->dirty = true;
    Touch(it->second);
    return &frame->page;
  }
  AQV_ASSIGN_OR_RETURN(size_t index, VictimFrame());
  Frame* frame = frames_[index].get();
  frame->page.Init(page_id);
  frame->page_id = page_id;
  frame->pins = 1;
  frame->dirty = true;
  frame->in_use = true;
  page_to_frame_[page_id] = index;
  Touch(index);
  return &frame->page;
}

void BufferPool::Unpin(uint32_t page_id, bool dirty) {
  auto it = page_to_frame_.find(page_id);
  if (it == page_to_frame_.end()) return;
  Frame* frame = frames_[it->second].get();
  if (frame->pins > 0) --frame->pins;
  frame->dirty = frame->dirty || dirty;
}

Status BufferPool::FlushPage(uint32_t page_id) {
  auto it = page_to_frame_.find(page_id);
  if (it == page_to_frame_.end()) return Status::OK();
  return FlushFrame(frames_[it->second].get());
}

Status BufferPool::FlushAll() {
  // Deterministic page-id order, so a kill between two flushes is
  // reproducible from the failpoint seed.
  std::vector<std::pair<uint32_t, size_t>> dirty;
  for (const auto& [page_id, index] : page_to_frame_) {
    if (frames_[index]->dirty) dirty.emplace_back(page_id, index);
  }
  std::sort(dirty.begin(), dirty.end());
  for (const auto& [page_id, index] : dirty) {
    (void)page_id;
    AQV_RETURN_NOT_OK(FlushFrame(frames_[index].get()));
  }
  return Status::OK();
}

void BufferPool::Reset() {
  for (auto& frame : frames_) {
    if (frame->pins == 0) {
      frame->in_use = false;
      frame->dirty = false;
    }
  }
  std::vector<uint32_t> drop;
  for (const auto& [page_id, index] : page_to_frame_) {
    if (!frames_[index]->in_use) drop.push_back(page_id);
  }
  for (uint32_t page_id : drop) {
    auto it = page_to_frame_.find(page_id);
    auto pos = lru_pos_.find(it->second);
    if (pos != lru_pos_.end()) {
      lru_.erase(pos->second);
      lru_pos_.erase(pos);
    }
    page_to_frame_.erase(it);
  }
}

}  // namespace aqv
