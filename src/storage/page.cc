#include "storage/page.h"

#include "base/serde.h"

namespace aqv {

uint16_t Page::GetU16(size_t off) const {
  return static_cast<uint16_t>(
      static_cast<unsigned char>(data_[off]) |
      (static_cast<unsigned char>(data_[off + 1]) << 8));
}

uint32_t Page::GetU32(size_t off) const {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[off + i]))
         << (8 * i);
  }
  return v;
}

uint64_t Page::GetU64(size_t off) const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[off + i]))
         << (8 * i);
  }
  return v;
}

void Page::PutU16(size_t off, uint16_t v) {
  data_[off] = static_cast<char>(v & 0xff);
  data_[off + 1] = static_cast<char>((v >> 8) & 0xff);
}

void Page::PutU32(size_t off, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    data_[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void Page::PutU64(size_t off, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    data_[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void Page::Init(uint32_t page_id) {
  std::memset(data_, 0, kPageSize);
  PutU32(8, page_id);
  PutU16(12, 0);
  PutU16(14, static_cast<uint16_t>(kPageSize));
}

size_t Page::FreeSpace() const {
  size_t slot_top = kHeaderSize + slot_count() * kSlotSize;
  size_t start = record_start();
  return start > slot_top ? start - slot_top : 0;
}

std::optional<uint16_t> Page::InsertRecord(std::string_view record) {
  if (record.size() > kMaxRecordSize) return std::nullopt;
  if (record.size() + kSlotSize > FreeSpace()) return std::nullopt;
  uint16_t slot = slot_count();
  uint16_t off = static_cast<uint16_t>(record_start() - record.size());
  std::memcpy(data_ + off, record.data(), record.size());
  size_t slot_off = kHeaderSize + slot * kSlotSize;
  PutU16(slot_off, off);
  PutU16(slot_off + 2, static_cast<uint16_t>(record.size()));
  PutU16(12, static_cast<uint16_t>(slot + 1));
  PutU16(14, off);
  return slot;
}

Result<std::string_view> Page::GetRecord(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::InvalidArgument(
        "page " + std::to_string(page_id()) + ": slot " +
        std::to_string(slot) + " out of range (" +
        std::to_string(slot_count()) + " slots)");
  }
  size_t slot_off = kHeaderSize + slot * kSlotSize;
  uint16_t off = GetU16(slot_off);
  uint16_t len = GetU16(slot_off + 2);
  if (off < kHeaderSize || static_cast<size_t>(off) + len > kPageSize) {
    return Status::InvalidArgument("page " + std::to_string(page_id()) +
                                   ": corrupt slot " + std::to_string(slot));
  }
  return std::string_view(data_ + off, len);
}

void Page::UpdateChecksum() {
  PutU64(0, Checksum64(data_ + 8, kPageSize - 8));
}

bool Page::VerifyChecksum() const {
  return GetU64(0) == Checksum64(data_ + 8, kPageSize - 8);
}

}  // namespace aqv
