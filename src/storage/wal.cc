#include "storage/wal.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "base/failpoint.h"
#include "base/serde.h"

namespace aqv {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Unavailable(what + " '" + path + "': " +
                             std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<LogWriter>> LogWriter::Open(
    const std::string& path, bool fsync_on_commit,
    uint64_t valid_prefix_bytes) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("cannot open wal file", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("cannot stat wal file", path);
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size > valid_prefix_bytes) {
    // Chop the torn tail a crash mid-append left behind.
    if (::ftruncate(fd, static_cast<off_t>(valid_prefix_bytes)) != 0) {
      ::close(fd);
      return ErrnoStatus("cannot trim torn wal tail of", path);
    }
    size = valid_prefix_bytes;
  }
  return std::unique_ptr<LogWriter>(
      new LogWriter(path, fd, size, fsync_on_commit));
}

LogWriter::~LogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogWriter::WriteAll(const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("cannot append to wal", path_);
    }
    done += static_cast<size_t>(n);
  }
  offset_ += size;
  return Status::OK();
}

Status LogWriter::Append(std::string_view payload) {
  if (failed_) {
    return Status::Unavailable(
        "wal writer failed earlier; restart and recover before committing");
  }
  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  PutFixed32(&record, kRecordMagic);
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  PutFixed64(&record, Checksum64(payload));
  record.append(payload.data(), payload.size());

  // Simulate a kill mid-pwrite: persist a strict prefix of the record, then
  // fire the failpoint. On injection the file ends in a torn record that
  // ReadLog must drop — the exact state a real crash leaves behind.
  size_t prefix = record.size() / 2;
  Status torn = [&]() -> Status {
    AQV_RETURN_NOT_OK(WriteAll(record.data(), prefix));
    AQV_FAILPOINT("wal.append");
    return WriteAll(record.data() + prefix, record.size() - prefix);
  }();
  if (!torn.ok()) {
    failed_ = true;
    return torn;
  }

  last_record_bytes_ = record.size();
  if (wal_bytes_ != nullptr) wal_bytes_->Increment(record.size());
  if (wal_records_ != nullptr) wal_records_->Increment();
  return Status::OK();
}

Status LogWriter::Sync() {
  if (failed_) {
    return Status::Unavailable(
        "wal writer failed earlier; restart and recover before committing");
  }
  // Records are fully written but not yet durable: a failure here models
  // a crash after pwrite and before fsync — the commit was never
  // acknowledged, yet may still survive. The differential oracle accepts
  // either outcome, as long as recovery applies it atomically or not at all.
  Status synced = [&]() -> Status {
    AQV_FAILPOINT("wal.fsync");
    if (fsync_on_commit_) {
      auto start = std::chrono::steady_clock::now();
      while (::fsync(fd_) != 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("cannot fsync wal", path_);
      }
      if (fsync_latency_ != nullptr) {
        fsync_latency_->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
      }
    }
    return Status::OK();
  }();
  if (!synced.ok()) {
    failed_ = true;
    return synced;
  }
  if (fsync_on_commit_ && wal_fsyncs_ != nullptr) wal_fsyncs_->Increment();
  return Status::OK();
}

Status LogWriter::AppendCommit(std::string_view payload) {
  AQV_RETURN_NOT_OK(Append(payload));
  return Sync();
}

Status LogWriter::Truncate() {
  AQV_FAILPOINT("wal.truncate");
  if (::ftruncate(fd_, 0) != 0) {
    return ErrnoStatus("cannot truncate wal", path_);
  }
  offset_ = 0;
  return Status::OK();
}

Result<WalContents> ReadLog(const std::string& path) {
  WalContents contents_out;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return contents_out;  // no log yet: empty history
    return ErrnoStatus("cannot open wal file", path);
  }
  std::string contents;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("cannot read wal file", path);
    }
    if (n == 0) break;
    contents.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  // Walk records until the tail tears: a short header, bad magic, a length
  // that runs past EOF, or a checksum mismatch all mean "crash mid-append"
  // — everything from there on is discarded, never an error. Returns the
  // byte position the walk stopped at.
  auto walk = [&contents](size_t start,
                          std::vector<std::string>* payloads) -> size_t {
    size_t good_end = start;
    ByteReader reader(std::string_view(contents).substr(start));
    while (reader.remaining() >= LogWriter::kRecordHeaderSize) {
      auto magic = reader.ReadFixed32();
      auto len = reader.ReadFixed32();
      auto checksum = reader.ReadFixed64();
      if (!magic.ok() || !len.ok() || !checksum.ok()) break;
      if (*magic != LogWriter::kRecordMagic) break;
      if (*len > reader.remaining()) break;
      auto payload = reader.ReadBytes(*len);
      if (!payload.ok()) break;
      if (Checksum64(*payload) != *checksum) break;
      payloads->emplace_back(payload->data(), payload->size());
      good_end = start + reader.position();
    }
    return good_end;
  };

  size_t clean_end = walk(0, &contents_out.payloads);
  contents_out.valid_bytes = clean_end;

  // Anything after the clean prefix is normally a torn tail. But if the
  // record magic reappears later and frames intact records, the tear is in
  // the MIDDLE of the log — bit rot, not a crash — and those later records
  // are acknowledged commits whose predecessor is lost. Surface them so
  // recovery can quarantine instead of silently dropping them.
  std::string magic_bytes;
  PutFixed32(&magic_bytes, LogWriter::kRecordMagic);
  size_t scan = clean_end == 0 ? 0 : clean_end;
  for (;;) {
    size_t hit = contents.find(magic_bytes, scan + 1);
    if (hit == std::string::npos) break;
    std::vector<std::string> found;
    size_t end = walk(hit, &found);
    if (!found.empty()) {
      contents_out.mid_log_corruption = true;
      for (std::string& payload : found) {
        contents_out.suspect_payloads.push_back(std::move(payload));
      }
      scan = end;
    } else {
      scan = hit;
    }
  }
  return contents_out;
}

}  // namespace aqv
