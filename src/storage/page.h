#ifndef AQV_STORAGE_PAGE_H_
#define AQV_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>

#include "base/result.h"

namespace aqv {

/// A fixed-size slotted heap page, the on-disk unit of the storage
/// subsystem. Variable-length records (encoded rows, directory-blob chunks)
/// are appended from the tail of the page downward while the slot directory
/// grows from the header upward; a slot is a (offset, length) pair, so
/// records are addressed stably by slot number.
///
/// Layout (all fields little-endian):
///   [0..8)    u64 checksum — Checksum64 over bytes [8, kPageSize)
///   [8..12)   u32 page id
///   [12..14)  u16 slot count
///   [14..16)  u16 record start (lowest record offset; kPageSize when empty)
///   [16..)    slot directory: slot i at 16 + 4*i = {u16 offset, u16 length}
///   ...free space...
///   [record start..kPageSize) record bytes, newest lowest
///
/// The checksum is stamped by UpdateChecksum() (the buffer pool does this on
/// every flush) and verified by VerifyChecksum() on read, so a torn page
/// write or bit rot is detected instead of silently decoded.
class Page {
 public:
  static constexpr size_t kPageSize = 8192;
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kSlotSize = 4;
  /// Largest record a single (empty) page can hold.
  static constexpr size_t kMaxRecordSize =
      kPageSize - kHeaderSize - kSlotSize;

  /// Zeroes the page and stamps `page_id`; the page holds no records.
  void Init(uint32_t page_id);

  uint32_t page_id() const { return GetU32(8); }
  uint16_t slot_count() const { return GetU16(12); }

  /// Bytes available for one more record (its slot included); a record of
  /// size <= FreeSpace() - kSlotSize fits.
  size_t FreeSpace() const;

  /// Appends `record`, returning its slot number, or nullopt when it does
  /// not fit (callers move on to a fresh page).
  std::optional<uint16_t> InsertRecord(std::string_view record);

  /// The record at `slot` (a view into the page buffer — valid only while
  /// the page stays pinned and unmodified).
  Result<std::string_view> GetRecord(uint16_t slot) const;

  /// Recomputes and stores the header checksum; call before writing the
  /// page to disk.
  void UpdateChecksum();

  /// True if the stored checksum matches the page contents.
  bool VerifyChecksum() const;

  char* data() { return data_; }
  const char* data() const { return data_; }

 private:
  uint16_t record_start() const { return GetU16(14); }

  uint16_t GetU16(size_t off) const;
  uint32_t GetU32(size_t off) const;
  uint64_t GetU64(size_t off) const;
  void PutU16(size_t off, uint16_t v);
  void PutU32(size_t off, uint32_t v);
  void PutU64(size_t off, uint64_t v);

  char data_[kPageSize];
};

}  // namespace aqv

#endif  // AQV_STORAGE_PAGE_H_
