#include "storage/disk_manager.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "base/failpoint.h"

namespace aqv {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Unavailable(what + " '" + path + "': " +
                             std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("cannot open db file", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("cannot stat db file", path);
  }
  uint32_t pages = static_cast<uint32_t>(
      static_cast<uint64_t>(st.st_size) / Page::kPageSize);
  return std::unique_ptr<DiskManager>(
      new DiskManager(path, fd, pages));
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status DiskManager::ReadPage(uint32_t page_id, Page* page) {
  if (page_id >= page_count_) {
    return Status::NotFound("page " + std::to_string(page_id) +
                            " past EOF of '" + path_ + "' (" +
                            std::to_string(page_count_) + " pages)");
  }
  // pread may legitimately transfer fewer bytes than asked (signal
  // interruption, pipe-ish filesystems); only a true EOF or errno is an
  // error, so loop until the page is whole.
  off_t off = static_cast<off_t>(page_id) * Page::kPageSize;
  size_t done = 0;
  while (done < Page::kPageSize) {
    ssize_t n = ::pread(fd_, page->data() + done, Page::kPageSize - done,
                        off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(
          "cannot read page " + std::to_string(page_id) + " from", path_);
    }
    if (n == 0) {
      return Status::Unavailable("page " + std::to_string(page_id) +
                                 " of '" + path_ +
                                 "' is truncated mid-page");
    }
    done += static_cast<size_t>(n);
  }
  if (pages_read_ != nullptr) pages_read_->Increment();
  return Status::OK();
}

Status DiskManager::WritePage(uint32_t page_id, const Page& page) {
  // A fired failpoint here is a simulated crash between page writes: the
  // checkpoint in progress aborts with every already-written shadow page
  // orphaned (harmless — the live meta page never referenced them).
  AQV_FAILPOINT("page.flush");
  off_t off = static_cast<off_t>(page_id) * Page::kPageSize;
  size_t done = 0;
  while (done < Page::kPageSize) {
    ssize_t n = ::pwrite(fd_, page.data() + done, Page::kPageSize - done,
                         off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(
          "cannot write page " + std::to_string(page_id) + " to", path_);
    }
    done += static_cast<size_t>(n);
  }
  if (page_id >= page_count_) page_count_ = page_id + 1;
  if (pages_written_ != nullptr) pages_written_->Increment();
  return Status::OK();
}

Status DiskManager::Sync() {
  while (::fsync(fd_) != 0) {
    if (errno == EINTR) continue;
    return ErrnoStatus("cannot fsync", path_);
  }
  return Status::OK();
}

}  // namespace aqv
