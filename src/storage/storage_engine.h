#ifndef AQV_STORAGE_STORAGE_ENGINE_H_
#define AQV_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "base/query_stats.h"
#include "base/result.h"
#include "catalog/catalog.h"
#include "exec/table.h"
#include "ir/views.h"
#include "maintain/incremental.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"

namespace aqv {

/// Durable image of one plan-cache entry. The plan itself travels as SQL
/// text (ToSql/ParseQuery round-trip exactly), so the on-disk format never
/// chases the Query struct.
struct PlanImage {
  std::string key;
  std::string plan_sql;
  bool used_materialized_view = false;
  int rewritings_considered = 0;
  double cost_original = 0;
  double cost_chosen = 0;
  std::vector<std::string> dependencies;
};

/// Everything recovery reconstructs from the db file and WAL: the state the
/// service resumes from after a crash or clean restart.
struct RecoveredState {
  Catalog catalog;
  ViewRegistry views;
  /// Base tables and stored view contents at the recovered epoch: the
  /// checkpoint image with every pending WAL commit replayed on top.
  Database db;
  /// Stored views whose contents must be recomputed before first use:
  /// their dependency closure intersects a WAL-replayed table (the
  /// checkpointed contents are pre-replay), or their pages were never
  /// checkpointed.
  std::vector<std::string> stale_views;
  std::vector<PlanImage> plans;
  /// Catalog/view-registry versions at checkpoint time, guarding the plan
  /// images: a mismatch after re-registration means DDL drifted and the
  /// cache must be discarded.
  uint64_t plan_catalog_version = 0;
  uint64_t plan_views_version = 0;
  uint64_t last_commit_seq = 0;
  uint64_t replayed_commits = 0;
  /// False when the db file held no valid checkpoint (fresh database).
  bool from_checkpoint = false;
};

/// Serializes `delta` (the WAL commit payload body) / parses it back.
/// Exposed for tests and the durability bench.
void EncodeDelta(const Delta& delta, std::string* out);
Result<Delta> DecodeDelta(ByteReader* reader);

struct StorageOptions {
  std::string path;               // db file; WAL lives at path + ".wal"
  size_t buffer_pool_pages = 64;  // page cache capacity (8 KiB pages)
  bool fsync_wal = true;          // fsync on every commit (off: bench only)
};

/// The durability subsystem: a shadow-paged single-file checkpoint plus a
/// write-ahead log that makes every PutAll epoch a durable commit.
///
/// ## On-disk layout
///
/// The db file is an array of 8 KiB slotted pages. Pages 0 and 1 are meta
/// pages written alternately (ping-pong by generation); whichever holds the
/// checksummed record with the highest generation is the live checkpoint.
/// The meta record points at a chain of directory pages; the directory blob
/// holds the serialized catalog, view definitions (as SQL), plan images,
/// and for every stored table its schema and data page ids. Data pages pack
/// one encoded row per slot record.
///
/// ## Crash safety
///
/// Checkpoints are shadow-paged: data and directory pages are allocated
/// only from page ids the live meta does NOT reference, all of them are
/// written and fsynced, and only then is the other meta page stamped with
/// generation+1 and fsynced. A kill anywhere before that second fsync
/// leaves the previous checkpoint fully intact — the new pages are orphaned
/// garbage reclaimed by the next successful checkpoint.
///
/// The WAL carries one record per committed write epoch, appended and
/// fsynced BEFORE the in-memory publication, so an acknowledged commit is
/// always recoverable. Checkpoint success truncates the WAL; replay skips
/// records at or below the checkpoint's commit sequence, so a kill between
/// the meta flip and the truncate double-applies nothing.
///
/// Failpoints: `page.flush` (each page write), `wal.append` (torn record),
/// `wal.fsync` (written-not-durable), `wal.truncate`, `recovery.replay`
/// (each replayed commit).
///
/// All entry points are serialized by one internal mutex: commits from
/// disjoint-table writers (the service's striped latches allow those to
/// race) are ordered here, which is sound because disjoint-table deltas
/// commute under replay.
class StorageEngine {
 public:
  /// Opens (creating if needed) the db file and WAL, and runs recovery:
  /// picks the live checkpoint, loads it, replays the WAL tail. Read-only
  /// with respect to the files, so a failed recovery (an injected
  /// `recovery.replay`, a corrupt directory) can simply be retried.
  static Result<std::unique_ptr<StorageEngine>> Open(StorageOptions options,
                                                     MetricsRegistry* metrics);

  /// The state recovered by Open. The service consumes this once at
  /// attach time (moves out of it).
  RecoveredState& recovered() { return recovered_; }

  /// Appends `delta` to the WAL as the next commit and makes it durable.
  /// Call at the PutAll commit point, after validation, before publication.
  /// On ANY failure the WAL is fail-stopped: every later LogCommit refuses
  /// with kUnavailable until the process restarts and recovers.
  /// When `stats` is non-null the commit's append+fsync time and record
  /// bytes are charged to it (per-statement cost attribution).
  Status LogCommit(const Delta& delta, QueryStats* stats = nullptr);

  /// Writes a full shadow-paged checkpoint of (catalog, views, db, plans)
  /// and truncates the WAL. Must be called with the database quiesced (the
  /// service holds every table latch exclusively). On failure before the
  /// meta flip the previous checkpoint remains live and the engine stays
  /// usable; a failure during WAL truncation leaves a stale-but-skipped
  /// log tail.
  Status Checkpoint(const Catalog& catalog, const ViewRegistry& views,
                    const Database& db, const std::vector<PlanImage>& plans);

  /// Sequence of the last logged commit (recovered ones included).
  uint64_t last_commit_seq() const;
  /// Sequence captured by the last successful checkpoint.
  uint64_t checkpoint_seq() const;
  /// Current WAL size in bytes.
  uint64_t wal_bytes() const;
  /// True once a WAL failure has fail-stopped the engine.
  bool failed() const;

  const std::string& path() const { return options_.path; }

 private:
  explicit StorageEngine(StorageOptions options)
      : options_(std::move(options)) {}

  Status Recover(MetricsRegistry* metrics);
  Status LoadCheckpoint(const std::string& directory_blob);
  Status ReplayWal();

  /// Publishes the buffer pool's cumulative hit/miss totals into the
  /// registry counters. The pool itself is metrics-free (its counters are
  /// plain fields under mu_), so the engine syncs the delta since the last
  /// sync after each batch of pool traffic. Caller holds mu_.
  void SyncPoolCounters();

  /// Allocates a page id no live checkpoint page uses (reusing freed ids
  /// before extending the file).
  uint32_t AllocatePage();

  /// Packs `rows` into freshly allocated pages; appends their ids.
  Status WriteRows(const std::vector<Row>& rows, std::vector<uint32_t>* pages);
  Result<std::vector<Row>> ReadRows(const std::vector<uint32_t>& pages,
                                    size_t expected_rows);

  StorageOptions options_;
  mutable std::mutex mu_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LogWriter> wal_;

  RecoveredState recovered_;

  uint64_t generation_ = 0;      // of the live meta page
  uint64_t last_seq_ = 0;        // last logged commit sequence
  uint64_t checkpoint_seq_ = 0;  // commit seq captured by live checkpoint
  uint64_t wal_valid_prefix_ = 0;  // clean wal bytes found by recovery
  std::set<uint32_t> live_pages_;  // pages the live checkpoint references
  std::set<uint32_t> free_pool_;   // allocatable ids below the file end
  uint32_t next_page_ = 2;         // first never-allocated id

  Counter* recoveries_ = nullptr;
  Counter* checkpoints_ = nullptr;
  Counter* wal_replayed_ = nullptr;
  Gauge* recovery_ms_ = nullptr;
  Gauge* recovery_replay_ms_ = nullptr;     // WAL-replay phase of recovery
  LatencyHistogram* checkpoint_latency_ = nullptr;
  Counter* pool_hits_ = nullptr;
  Counter* pool_misses_ = nullptr;
  uint64_t pool_hits_synced_ = 0;    // pool totals already published
  uint64_t pool_misses_synced_ = 0;
};

}  // namespace aqv

#endif  // AQV_STORAGE_STORAGE_ENGINE_H_
