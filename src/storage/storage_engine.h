#ifndef AQV_STORAGE_STORAGE_ENGINE_H_
#define AQV_STORAGE_STORAGE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "base/query_stats.h"
#include "base/result.h"
#include "catalog/catalog.h"
#include "exec/table.h"
#include "ir/views.h"
#include "maintain/incremental.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"

namespace aqv {

/// Durable image of one plan-cache entry. The plan itself travels as SQL
/// text (ToSql/ParseQuery round-trip exactly), so the on-disk format never
/// chases the Query struct.
struct PlanImage {
  std::string key;
  std::string plan_sql;
  bool used_materialized_view = false;
  int rewritings_considered = 0;
  double cost_original = 0;
  double cost_chosen = 0;
  std::vector<std::string> dependencies;
};

/// Everything recovery reconstructs from the db file and WAL: the state the
/// service resumes from after a crash or clean restart.
struct RecoveredState {
  Catalog catalog;
  ViewRegistry views;
  /// Base tables and stored view contents at the recovered epoch: the
  /// checkpoint image with every pending WAL commit replayed on top.
  Database db;
  /// Stored views whose contents must be recomputed before first use:
  /// their dependency closure intersects a WAL-replayed table (the
  /// checkpointed contents are pre-replay), or their pages were never
  /// checkpointed.
  std::vector<std::string> stale_views;
  std::vector<PlanImage> plans;
  /// Catalog/view-registry versions at checkpoint time, guarding the plan
  /// images: a mismatch after re-registration means DDL drifted and the
  /// cache must be discarded.
  uint64_t plan_catalog_version = 0;
  uint64_t plan_views_version = 0;
  uint64_t last_commit_seq = 0;
  uint64_t replayed_commits = 0;
  /// False when the db file held no valid checkpoint (fresh database).
  bool from_checkpoint = false;
  /// Tables whose durable state failed its checksum (bit-rotted or torn
  /// data pages) or sat beyond a mid-log WAL tear, mapped to a
  /// human-readable reason. Recovery salvages every checksummed-clean
  /// table and quarantines these; the service serves clean errors for them
  /// until they are repaired (a LOAD that fully replaces the contents).
  std::map<std::string, std::string> quarantined_tables;

  /// True when the WAL tore mid-log (not just at the tail): a commit inside
  /// the log is unrecoverable. The service must checkpoint promptly — the
  /// quarantine derived from the torn log has to reach the directory blob
  /// before the evidence (the suspect tail recovery truncated) is gone.
  bool wal_mid_log_corruption = false;
};

/// Serializes `delta` (the WAL commit payload body) / parses it back.
/// Exposed for tests and the durability bench.
void EncodeDelta(const Delta& delta, std::string* out);
Result<Delta> DecodeDelta(ByteReader* reader);

struct StorageOptions {
  std::string path;               // db file; WAL lives at path + ".wal"
  size_t buffer_pool_pages = 64;  // page cache capacity (8 KiB pages)
  bool fsync_wal = true;          // fsync on every commit (off: bench only)

  /// Group commit: concurrent LogCommit callers coalesce onto one fsync
  /// (leader/follower). Off = every commit pays its own fsync (the PR 6
  /// behavior, kept as the bench baseline). `group_commit_window_micros`
  /// lets the leader linger before fsyncing so followers can pile on —
  /// 0 trades no latency and still coalesces whatever arrived while the
  /// previous fsync was in flight.
  bool group_commit = true;
  uint64_t group_commit_window_micros = 0;

  /// Replay the WAL tail into one staging image published at a single COW
  /// epoch, instead of one Database publication per record. Off = the PR 6
  /// per-record path, kept as the bench baseline.
  bool staged_replay = true;

  /// Auto-checkpoint thresholds, polled by the service's background
  /// checkpointer through NeedsAutoCheckpoint(): checkpoint once the WAL
  /// exceeds this many bytes / this many commits since the last
  /// checkpoint. 0 disables that trigger.
  uint64_t auto_checkpoint_wal_bytes = 0;
  uint64_t auto_checkpoint_commits = 0;

  /// Writer backpressure cap: once the WAL exceeds this many bytes
  /// (OverBackpressureCap()), the service stalls writers — bounded
  /// sleep-with-deadline, then a clean SERVER_BUSY-style refusal — until
  /// the checkpointer catches up. 0 disables the cap.
  uint64_t backpressure_wal_bytes = 0;
};

/// The durability subsystem: a shadow-paged single-file checkpoint plus a
/// write-ahead log that makes every PutAll epoch a durable commit.
///
/// ## On-disk layout
///
/// The db file is an array of 8 KiB slotted pages. Pages 0 and 1 are meta
/// pages written alternately (ping-pong by generation); whichever holds the
/// checksummed record with the highest generation is the live checkpoint.
/// The meta record points at a chain of directory pages; the directory blob
/// holds the serialized catalog, view definitions (as SQL), plan images,
/// and for every stored table its schema and data page ids. Data pages pack
/// one encoded row per slot record.
///
/// ## Crash safety
///
/// Checkpoints are shadow-paged: data and directory pages are allocated
/// only from page ids the live meta does NOT reference, all of them are
/// written and fsynced, and only then is the other meta page stamped with
/// generation+1 and fsynced. A kill anywhere before that second fsync
/// leaves the previous checkpoint fully intact — the new pages are orphaned
/// garbage reclaimed by the next successful checkpoint.
///
/// The WAL carries one record per committed write epoch, appended and
/// fsynced BEFORE the in-memory publication, so an acknowledged commit is
/// always recoverable. Checkpoint success truncates the WAL; replay skips
/// records at or below the checkpoint's commit sequence, so a kill between
/// the meta flip and the truncate double-applies nothing.
///
/// Failpoints: `page.flush` (each page write), `wal.append` (torn record),
/// `wal.fsync` (written-not-durable), `wal.truncate`, `recovery.replay`
/// (each replayed commit), `wal.group_leader` (a group-commit leader about
/// to fsync for its whole batch), `scrub.page` (each page checksum
/// verification — an injected error reads as a corrupt page).
///
/// Rows larger than one page record are chained across overflow records:
/// every data-page record starts with a continuation flag byte, and a row
/// is the concatenation of consecutive records up to the first final one.
/// Rows up to kMaxRowBytes round-trip; bigger ones are refused with a
/// clean row-size error (the service rejects them at INSERT/LOAD time).
///
/// Entry points are serialized by one internal mutex: commits from
/// disjoint-table writers (the service's striped latches allow those to
/// race) are ordered here, which is sound because disjoint-table deltas
/// commute under replay. With group commit the mutex covers only the WAL
/// append (sequence assignment stays ordered); the fsync runs outside it
/// under a leader/follower protocol, so acked-implies-durable holds while
/// one fsync covers every record appended before it started.
class StorageEngine {
 public:
  /// Hard cap on one encoded row (the overflow-chain limit, 1 MiB). Rows
  /// above it are refused with kInvalidArgument at WriteRows — and, so the
  /// failure surfaces at INSERT/LOAD time instead of the next CHECKPOINT,
  /// by the service through CheckRowSize.
  static constexpr size_t kMaxRowBytes = 1 << 20;

  /// Per-table result of a scrub pass (see Scrub()).
  struct TableScrub {
    uint64_t pages = 0;
    uint64_t corrupt_pages = 0;
  };
  struct ScrubReport {
    uint64_t pages_checked = 0;
    uint64_t pages_corrupt = 0;
    uint64_t directory_pages_corrupt = 0;
    std::map<std::string, TableScrub> tables;
    uint64_t wal_records = 0;
    bool wal_mid_log_corruption = false;
    uint64_t wal_suspect_records = 0;
  };

  /// Opens (creating if needed) the db file and WAL, and runs recovery:
  /// picks the live checkpoint, loads it, replays the WAL tail. Read-only
  /// with respect to the files, so a failed recovery (an injected
  /// `recovery.replay`, a corrupt directory) can simply be retried.
  static Result<std::unique_ptr<StorageEngine>> Open(StorageOptions options,
                                                     MetricsRegistry* metrics);

  /// The state recovered by Open. The service consumes this once at
  /// attach time (moves out of it).
  RecoveredState& recovered() { return recovered_; }

  /// Appends `delta` to the WAL as the next commit and makes it durable.
  /// Call at the PutAll commit point, after validation, before publication.
  /// On ANY failure the WAL is fail-stopped: every later LogCommit refuses
  /// with kUnavailable until the process restarts and recovers.
  /// When `stats` is non-null the commit's append+fsync time and record
  /// bytes are charged to it (per-statement cost attribution).
  Status LogCommit(const Delta& delta, QueryStats* stats = nullptr);

  /// Writes a full shadow-paged checkpoint of (catalog, views, db, plans)
  /// and truncates the WAL. Must be called with the database quiesced (the
  /// service holds every table latch exclusively). On failure before the
  /// meta flip the previous checkpoint remains live and the engine stays
  /// usable; a failure during WAL truncation leaves a stale-but-skipped
  /// log tail.
  Status Checkpoint(const Catalog& catalog, const ViewRegistry& views,
                    const Database& db, const std::vector<PlanImage>& plans);

  /// Re-verifies the checksum of every live checkpoint page (directory and
  /// data, read straight from disk so cached frames cannot mask on-disk
  /// rot) and re-scans the WAL for mid-log corruption. Reporting only — it
  /// never mutates state; the service decides what to quarantine.
  Result<ScrubReport> Scrub();

  /// Drops `name` from the quarantine map the next checkpoint persists.
  /// Call when a repair (LOAD) replaced the table's contents — and pair it
  /// with a checkpoint, so both the repair and the cleared quarantine
  /// outlive a restart instead of the damaged pages re-deriving it.
  void ClearQuarantinedTable(const std::string& name);

  /// Clean error if `row` encodes beyond kMaxRowBytes — the check the
  /// service runs at INSERT/LOAD time so oversized rows are refused when
  /// they arrive, not when the next CHECKPOINT trips over them.
  static Status CheckRowSize(const Row& row);

  /// True once the WAL has outgrown an armed auto-checkpoint threshold
  /// (bytes or commits since the last checkpoint) — the service's
  /// background checkpointer polls this.
  bool NeedsAutoCheckpoint() const;
  /// True once the WAL exceeds the backpressure cap: the service stalls
  /// writers until a checkpoint shrinks the log.
  bool OverBackpressureCap() const;

  /// Sequence of the last logged commit (recovered ones included).
  uint64_t last_commit_seq() const;
  /// Sequence captured by the last successful checkpoint.
  uint64_t checkpoint_seq() const;
  /// Current WAL size in bytes.
  uint64_t wal_bytes() const;
  /// True once a WAL failure has fail-stopped the engine.
  bool failed() const;

  const StorageOptions& options() const { return options_; }
  const std::string& path() const { return options_.path; }

 private:
  explicit StorageEngine(StorageOptions options)
      : options_(std::move(options)) {}

  Status Recover(MetricsRegistry* metrics);
  Status LoadCheckpoint(const std::string& directory_blob);
  Status ReplayWal();

  /// The group-commit follower/leader protocol: returns once every WAL
  /// byte up to `my_end` is durable (or the writer fail-stopped). Exactly
  /// one caller fsyncs at a time; the rest wait on its result.
  Status SyncWalGroup(uint64_t my_end);

  /// True once a group-commit leader's fsync failed. Part of the fail-stop
  /// surface alongside LogWriter::failed(): the writer itself is not
  /// poisoned by a leader failure (its appended bytes are intact), so every
  /// commit/checkpoint entry point must check both.
  bool GroupFailed() const;

  /// Publishes the buffer pool's cumulative hit/miss totals into the
  /// registry counters. The pool itself is metrics-free (its counters are
  /// plain fields under mu_), so the engine syncs the delta since the last
  /// sync after each batch of pool traffic. Caller holds mu_.
  void SyncPoolCounters();

  /// Allocates a page id no live checkpoint page uses (reusing freed ids
  /// before extending the file).
  uint32_t AllocatePage();

  /// Packs `rows` into freshly allocated pages; appends their ids.
  Status WriteRows(const std::vector<Row>& rows, std::vector<uint32_t>* pages);
  Result<std::vector<Row>> ReadRows(const std::vector<uint32_t>& pages,
                                    size_t expected_rows);

  StorageOptions options_;
  mutable std::mutex mu_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LogWriter> wal_;

  RecoveredState recovered_;

  uint64_t generation_ = 0;      // of the live meta page
  uint64_t last_seq_ = 0;        // last logged commit sequence
  uint64_t checkpoint_seq_ = 0;  // commit seq captured by live checkpoint
  uint64_t wal_valid_prefix_ = 0;  // clean wal bytes found by recovery
  std::set<uint32_t> live_pages_;  // pages the live checkpoint references
  std::set<uint32_t> free_pool_;   // allocatable ids below the file end
  uint32_t next_page_ = 2;         // first never-allocated id

  /// Where every live table's rows (and the directory blob) sit on disk —
  /// what Scrub() walks. Rebuilt by LoadCheckpoint and Checkpoint.
  std::map<std::string, std::vector<uint32_t>> table_pages_;
  std::vector<uint32_t> directory_pages_;

  /// Quarantine as of the last recovery (minus repairs), serialized into
  /// every checkpoint's directory blob. Persisting it is what keeps a
  /// quarantine alive across the cleanup that recovery and checkpoints
  /// perform — WAL-tail truncation and page rewrites both destroy the
  /// on-disk evidence the quarantine was derived from. Guarded by mu_.
  std::map<std::string, std::string> quarantine_;

  /// Group-commit state. Appends publish how far the log extends through
  /// the atomics (store-release after the write syscall completed, so a
  /// leader's acquire-load only ever covers fully written bytes); the
  /// leader/follower handshake and the durable watermark live under
  /// group_mu_.
  mutable std::mutex group_mu_;
  std::condition_variable group_cv_;
  bool group_sync_active_ = false;
  bool group_failed_ = false;
  uint64_t wal_synced_offset_ = 0;
  uint64_t wal_synced_records_ = 0;
  std::atomic<uint64_t> wal_appended_offset_{0};
  std::atomic<uint64_t> wal_appended_records_{0};

  Counter* recoveries_ = nullptr;
  Counter* checkpoints_ = nullptr;
  Counter* wal_replayed_ = nullptr;
  Gauge* recovery_ms_ = nullptr;
  Gauge* recovery_replay_ms_ = nullptr;     // WAL-replay phase of recovery
  LatencyHistogram* checkpoint_latency_ = nullptr;
  Counter* pool_hits_ = nullptr;
  Counter* pool_misses_ = nullptr;
  uint64_t pool_hits_synced_ = 0;    // pool totals already published
  uint64_t pool_misses_synced_ = 0;
  Gauge* wal_size_gauge_ = nullptr;  // current WAL file size
  LatencyHistogram* group_commit_batch_ = nullptr;  // records per fsync
  Counter* pages_quarantined_ = nullptr;
};

}  // namespace aqv

#endif  // AQV_STORAGE_STORAGE_ENGINE_H_
