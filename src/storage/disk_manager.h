#ifndef AQV_STORAGE_DISK_MANAGER_H_
#define AQV_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/metrics.h"
#include "base/result.h"
#include "storage/page.h"

namespace aqv {

/// Page-granular I/O over the single database file. Pages are addressed by
/// id (byte offset = id * Page::kPageSize); WritePage extends the file as
/// needed, Sync() is the durability barrier the checkpoint protocol builds
/// on. The `page.flush` failpoint is evaluated on every WritePage, so the
/// chaos suite can kill a checkpoint between any two page writes.
///
/// Thread-compatibility: callers (the buffer pool, the storage engine)
/// serialize access externally — the engine holds its own mutex across any
/// checkpoint or recovery, and pread/pwrite keep independent offsets anyway.
class DiskManager {
 public:
  /// Opens (creating if absent) the db file at `path`.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path);
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Reads the page at `page_id` into `*page`. Reading past EOF fails with
  /// kNotFound (the caller decides whether that is corruption).
  Status ReadPage(uint32_t page_id, Page* page);

  /// Writes `page` at `page_id`, extending the file if needed. The page's
  /// checksum must already be stamped (the buffer pool does this).
  Status WritePage(uint32_t page_id, const Page& page);

  /// fsyncs the file: every completed WritePage is durable after this.
  Status Sync();

  /// Number of whole pages the file currently holds.
  uint32_t page_count() const { return page_count_; }

  const std::string& path() const { return path_; }

  /// Attaches counters bumped on each page read/write (may be null).
  void SetMetrics(Counter* pages_read, Counter* pages_written) {
    pages_read_ = pages_read;
    pages_written_ = pages_written;
  }

 private:
  DiskManager(std::string path, int fd, uint32_t page_count)
      : path_(std::move(path)), fd_(fd), page_count_(page_count) {}

  std::string path_;
  int fd_ = -1;
  uint32_t page_count_ = 0;
  Counter* pages_read_ = nullptr;
  Counter* pages_written_ = nullptr;
};

}  // namespace aqv

#endif  // AQV_STORAGE_DISK_MANAGER_H_
