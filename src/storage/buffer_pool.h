#ifndef AQV_STORAGE_BUFFER_POOL_H_
#define AQV_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace aqv {

/// A fixed-capacity cache of pages between the storage engine and the disk
/// manager, with pin/unpin reference counting, dirty tracking and LRU
/// replacement. Checkpoints stream table rows through it (NewPage →
/// InsertRecord → Unpin(dirty) → FlushAll) so writing a database larger
/// than the pool works in bounded memory; recovery reads table pages back
/// through FetchPage with the same bound.
///
/// Pinned pages are never evicted: a FetchPage/NewPage that finds every
/// frame pinned fails with kResourceExhausted rather than evicting a page
/// someone still points at. Eviction of a dirty frame writes it out first
/// (checksum stamped), so no acknowledged record is ever silently dropped.
///
/// Thread-compatibility: the owning engine serializes access (checkpoint
/// and recovery run under the engine mutex), so the pool itself is
/// lock-free-by-exclusion rather than internally synchronized.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity);

  /// Pins and returns the page at `page_id`, reading it from disk on a
  /// miss. The pointer stays valid until the matching Unpin.
  Result<Page*> FetchPage(uint32_t page_id);

  /// Pins and returns a freshly initialized (empty) page for `page_id`
  /// without reading disk; the frame starts dirty.
  Result<Page*> NewPage(uint32_t page_id);

  /// Releases one pin; `dirty` marks the frame as needing a flush.
  void Unpin(uint32_t page_id, bool dirty);

  /// Writes the frame for `page_id` if dirty (checksum stamped first).
  Status FlushPage(uint32_t page_id);

  /// Writes every dirty frame. Does NOT fsync — the engine calls
  /// DiskManager::Sync() at its durability barriers.
  Status FlushAll();

  /// Drops every (non-pinned) frame without writing; recovery uses this to
  /// forget pages of an aborted load. Dirty frames are discarded.
  void Reset();

  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Frame {
    Page page;
    uint32_t page_id = 0;
    int pins = 0;
    bool dirty = false;
    bool in_use = false;
  };

  /// Frees an unpinned frame (flushing it if dirty) and returns its index,
  /// or kResourceExhausted when every frame is pinned.
  Result<size_t> VictimFrame();
  Status FlushFrame(Frame* frame);
  void Touch(size_t frame_index);

  DiskManager* disk_;
  size_t capacity_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::unordered_map<uint32_t, size_t> page_to_frame_;
  std::list<size_t> lru_;  // front = most recently used
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace aqv

#endif  // AQV_STORAGE_BUFFER_POOL_H_
