#include "storage/storage_engine.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <unordered_map>

#include "base/failpoint.h"
#include "base/serde.h"
#include "base/trace.h"
#include "ir/printer.h"
#include "parser/parser.h"

namespace aqv {

namespace {

constexpr uint32_t kMetaMagic = 0x4d565141;  // "AQVM"
constexpr uint32_t kDirMagic = 0x44565141;   // "AQVD"
// v2: data-page records carry a continuation flag byte (overflow chains
// for rows larger than one page record).
constexpr uint32_t kFormatVersion = 2;

// Data-page record framing: the first byte says whether the row continues
// in the next record of the page stream.
constexpr char kRecordFinal = '\x00';
constexpr char kRecordContinues = '\x01';
constexpr size_t kMaxChunkSize = Page::kMaxRecordSize - 1;

using Clock = std::chrono::steady_clock;

/// Parsed contents of a meta-page record.
struct MetaRecord {
  uint64_t generation = 0;
  uint64_t commit_seq = 0;
  uint64_t blob_size = 0;
  std::vector<uint32_t> directory_pages;
};

void EncodeMeta(const MetaRecord& meta, std::string* out) {
  PutFixed32(out, kMetaMagic);
  PutFixed32(out, kFormatVersion);
  PutFixed64(out, meta.generation);
  PutFixed64(out, meta.commit_seq);
  PutFixed64(out, meta.blob_size);
  PutVarint64(out, meta.directory_pages.size());
  for (uint32_t id : meta.directory_pages) PutFixed32(out, id);
}

Result<MetaRecord> DecodeMeta(std::string_view record) {
  ByteReader reader(record);
  AQV_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadFixed32());
  if (magic != kMetaMagic) {
    return Status::InvalidArgument("meta page has wrong magic");
  }
  AQV_ASSIGN_OR_RETURN(uint32_t format, reader.ReadFixed32());
  if (format != kFormatVersion) {
    return Status::Unsupported("db file format " + std::to_string(format) +
                               " does not match this binary's format " +
                               std::to_string(kFormatVersion));
  }
  MetaRecord meta;
  AQV_ASSIGN_OR_RETURN(meta.generation, reader.ReadFixed64());
  AQV_ASSIGN_OR_RETURN(meta.commit_seq, reader.ReadFixed64());
  AQV_ASSIGN_OR_RETURN(meta.blob_size, reader.ReadFixed64());
  AQV_ASSIGN_OR_RETURN(uint64_t pages, reader.ReadVarint64());
  meta.directory_pages.reserve(pages);
  for (uint64_t i = 0; i < pages; ++i) {
    AQV_ASSIGN_OR_RETURN(uint32_t id, reader.ReadFixed32());
    meta.directory_pages.push_back(id);
  }
  return meta;
}

/// One stored table in the directory: schema plus where its rows live.
struct TableEntry {
  std::string name;
  std::vector<std::string> columns;
  uint64_t row_count = 0;
  std::vector<uint32_t> pages;
};

/// Removes one occurrence per row of `rows` from `table` in place — the
/// staged-replay counterpart of ApplyDeltaToBase's delete side, without the
/// whole-table copy-per-record that made E18's replay superlinear.
Status RemoveRowsFromTable(const std::vector<Row>& rows,
                           const std::string& name, Table* table) {
  std::unordered_map<Row, int64_t, RowHash, RowEq> to_remove;
  for (const Row& row : rows) ++to_remove[row];
  std::vector<Row>& stored = *table->mutable_rows();
  size_t out = 0;
  for (size_t i = 0; i < stored.size(); ++i) {
    auto it = to_remove.find(stored[i]);
    if (it != to_remove.end() && it->second > 0) {
      --it->second;
      continue;
    }
    if (out != i) stored[out] = std::move(stored[i]);
    ++out;
  }
  stored.resize(out);
  for (const auto& [row, remaining] : to_remove) {
    if (remaining > 0) {
      return Status::InvalidArgument(
          "replayed delete removes a row not present in '" + name + "'");
    }
  }
  return Status::OK();
}

/// Base tables a view reads, transitively through other views.
std::set<std::string> ViewClosure(const ViewRegistry& views,
                                  const std::string& name) {
  std::set<std::string> closure;
  std::vector<std::string> stack = {name};
  while (!stack.empty()) {
    std::string current = std::move(stack.back());
    stack.pop_back();
    Result<const ViewDef*> def = views.Get(current);
    if (!def.ok()) continue;
    for (const TableRef& ref : (*def)->query.from) {
      if (!closure.insert(ref.table).second) continue;
      if (views.Has(ref.table)) stack.push_back(ref.table);
    }
  }
  return closure;
}

}  // namespace

void EncodeDelta(const Delta& delta, std::string* out) {
  auto encode_side =
      [out](const std::map<std::string, std::vector<Row>>& side) {
        PutVarint64(out, side.size());
        for (const auto& [table, rows] : side) {
          PutLengthPrefixed(out, table);
          PutVarint64(out, rows.size());
          for (const Row& row : rows) EncodeRow(row, out);
        }
      };
  encode_side(delta.inserts);
  encode_side(delta.deletes);
}

Result<Delta> DecodeDelta(ByteReader* reader) {
  Delta delta;
  auto decode_side =
      [reader](std::map<std::string, std::vector<Row>>* side) -> Status {
    AQV_ASSIGN_OR_RETURN(uint64_t tables, reader->ReadVarint64());
    for (uint64_t t = 0; t < tables; ++t) {
      AQV_ASSIGN_OR_RETURN(std::string_view name,
                           reader->ReadLengthPrefixed());
      AQV_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint64());
      std::vector<Row>& rows = (*side)[std::string(name)];
      rows.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        AQV_ASSIGN_OR_RETURN(Row row, DecodeRow(reader));
        rows.push_back(std::move(row));
      }
    }
    return Status::OK();
  };
  AQV_RETURN_NOT_OK(decode_side(&delta.inserts));
  AQV_RETURN_NOT_OK(decode_side(&delta.deletes));
  return delta;
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    StorageOptions options, MetricsRegistry* metrics) {
  auto engine =
      std::unique_ptr<StorageEngine>(new StorageEngine(std::move(options)));
  AQV_ASSIGN_OR_RETURN(engine->disk_, DiskManager::Open(engine->options_.path));
  engine->pool_ = std::make_unique<BufferPool>(
      engine->disk_.get(), engine->options_.buffer_pool_pages);
  if (metrics != nullptr) {
    engine->disk_->SetMetrics(&metrics->GetCounter("storage.pages_read"),
                              &metrics->GetCounter("storage.pages_written"));
    engine->recoveries_ = &metrics->GetCounter("storage.recoveries");
    engine->checkpoints_ = &metrics->GetCounter("storage.checkpoints");
    engine->wal_replayed_ = &metrics->GetCounter("storage.wal_replayed");
    engine->recovery_ms_ = &metrics->GetGauge("storage.recovery_ms");
    engine->recovery_replay_ms_ =
        &metrics->GetGauge("storage.recovery_replay_ms");
    engine->checkpoint_latency_ =
        &metrics->GetHistogram("storage.checkpoint_latency");
    engine->pool_hits_ = &metrics->GetCounter("storage.pool_hits");
    engine->pool_misses_ = &metrics->GetCounter("storage.pool_misses");
    engine->wal_size_gauge_ = &metrics->GetGauge("storage.wal_size_bytes");
    engine->group_commit_batch_ =
        &metrics->GetHistogram("storage.group_commit_batch");
    engine->pages_quarantined_ =
        &metrics->GetCounter("storage.pages_quarantined_total");
  }
  AQV_RETURN_NOT_OK(engine->Recover(metrics));
  return engine;
}

Status StorageEngine::Recover(MetricsRegistry* metrics) {
  TraceSpan span("storage.recovery");
  Clock::time_point start = Clock::now();

  // Pick the live checkpoint: of the two meta pages, the checksummed,
  // well-formed record with the highest generation wins. A fresh file (or
  // one whose first checkpoint died mid-write) has none — empty database.
  std::optional<MetaRecord> live;
  for (uint32_t meta_id = 0; meta_id <= 1; ++meta_id) {
    if (meta_id >= disk_->page_count()) continue;
    Page page;
    if (!disk_->ReadPage(meta_id, &page).ok()) continue;
    if (!page.VerifyChecksum() || page.slot_count() < 1) continue;
    Result<std::string_view> record = page.GetRecord(0);
    if (!record.ok()) continue;
    Result<MetaRecord> meta = DecodeMeta(*record);
    if (!meta.ok() || meta->generation == 0) continue;
    if (!live.has_value() || meta->generation > live->generation) {
      live = *std::move(meta);
    }
  }

  if (live.has_value()) {
    generation_ = live->generation;
    checkpoint_seq_ = live->commit_seq;
    last_seq_ = live->commit_seq;
    recovered_.from_checkpoint = true;

    // Reassemble the directory blob from its page chain.
    std::string blob;
    blob.reserve(live->blob_size);
    for (uint32_t page_id : live->directory_pages) {
      AQV_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
      if (!page->VerifyChecksum()) {
        pool_->Unpin(page_id, false);
        return Status::Unavailable("directory page " +
                                   std::to_string(page_id) +
                                   " failed its checksum");
      }
      Result<std::string_view> chunk = page->GetRecord(0);
      if (!chunk.ok()) {
        pool_->Unpin(page_id, false);
        return chunk.status();
      }
      blob.append(chunk->data(), chunk->size());
      pool_->Unpin(page_id, false);
    }
    if (blob.size() != live->blob_size) {
      return Status::Unavailable("directory blob truncated: expected " +
                                 std::to_string(live->blob_size) + " bytes, " +
                                 "got " + std::to_string(blob.size()));
    }
    live_pages_.insert(live->directory_pages.begin(),
                       live->directory_pages.end());
    directory_pages_ = live->directory_pages;
    AQV_RETURN_NOT_OK(LoadCheckpoint(blob));
  }

  // Replay is timed separately from whole-recovery: the service's recovery
  // report splits the WAL-replay phase from the view-recompute phase it
  // runs afterwards, so slow restarts can be blamed on the right stage.
  Clock::time_point replay_start = Clock::now();
  AQV_RETURN_NOT_OK(ReplayWal());
  if (recovery_replay_ms_ != nullptr) {
    recovery_replay_ms_->Set(static_cast<int64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              replay_start)
            .count()));
  }
  SyncPoolCounters();

  // Snapshot the derived quarantine (persisted entries, page rot, mid-log
  // tears alike): the next checkpoint serializes it into the directory, so
  // the quarantine outlives the very cleanup — page rewrites, the WAL-tail
  // trim just below — that destroys the evidence it was derived from.
  quarantine_ = recovered_.quarantined_tables;

  // Open the writer last: ReplayWal measured the clean prefix, and opening
  // with it trims any torn tail before the first new append.
  AQV_ASSIGN_OR_RETURN(
      wal_, LogWriter::Open(options_.path + ".wal", options_.fsync_wal,
                            wal_valid_prefix_));
  if (metrics != nullptr) {
    wal_->SetMetrics(&metrics->GetCounter("storage.wal_bytes"),
                     &metrics->GetCounter("storage.wal_fsyncs"),
                     &metrics->GetCounter("storage.wal_records"),
                     &metrics->GetHistogram("storage.wal_fsync_latency"));
  }
  // Everything on disk at open is as durable as it will ever be: start the
  // group-commit watermarks at the recovered log size.
  wal_synced_offset_ = wal_->size_bytes();
  wal_appended_offset_.store(wal_->size_bytes(), std::memory_order_release);
  if (wal_size_gauge_ != nullptr) {
    wal_size_gauge_->Set(static_cast<int64_t>(wal_->size_bytes()));
  }

  recovered_.last_commit_seq = last_seq_;
  uint64_t elapsed_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
  if (recovery_ms_ != nullptr) {
    recovery_ms_->Set(static_cast<int64_t>(elapsed_ms));
  }
  if (recoveries_ != nullptr) recoveries_->Increment();
  if (span.active()) {
    span.AddAttr("replayed_commits", recovered_.replayed_commits);
    span.AddAttr("stale_views",
                 static_cast<uint64_t>(recovered_.stale_views.size()));
    span.AddAttr("from_checkpoint",
                 recovered_.from_checkpoint ? "true" : "false");
  }
  return Status::OK();
}

Status StorageEngine::LoadCheckpoint(const std::string& blob) {
  ByteReader reader(blob);
  AQV_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadFixed32());
  if (magic != kDirMagic) {
    return Status::Unavailable("directory blob has wrong magic");
  }

  AQV_ASSIGN_OR_RETURN(std::string_view catalog_image,
                       reader.ReadLengthPrefixed());
  ByteReader catalog_reader(catalog_image);
  AQV_RETURN_NOT_OK(recovered_.catalog.DeserializeFrom(&catalog_reader));

  // Views travel as their CREATE VIEW SQL; the printed form names every
  // occurrence column explicitly, so re-parsing needs no catalog.
  AQV_ASSIGN_OR_RETURN(uint64_t num_views, reader.ReadVarint64());
  for (uint64_t i = 0; i < num_views; ++i) {
    AQV_ASSIGN_OR_RETURN(std::string_view sql, reader.ReadLengthPrefixed());
    AQV_ASSIGN_OR_RETURN(ViewDef view, ParseView(sql));
    AQV_RETURN_NOT_OK(recovered_.views.Register(std::move(view)));
  }

  AQV_ASSIGN_OR_RETURN(recovered_.plan_catalog_version, reader.ReadFixed64());
  AQV_ASSIGN_OR_RETURN(recovered_.plan_views_version, reader.ReadFixed64());
  AQV_ASSIGN_OR_RETURN(uint64_t num_plans, reader.ReadVarint64());
  for (uint64_t i = 0; i < num_plans; ++i) {
    PlanImage plan;
    AQV_ASSIGN_OR_RETURN(std::string_view key, reader.ReadLengthPrefixed());
    plan.key.assign(key);
    AQV_ASSIGN_OR_RETURN(std::string_view sql, reader.ReadLengthPrefixed());
    plan.plan_sql.assign(sql);
    AQV_ASSIGN_OR_RETURN(std::string_view flags, reader.ReadBytes(1));
    plan.used_materialized_view = flags[0] != 0;
    AQV_ASSIGN_OR_RETURN(uint64_t considered, reader.ReadVarint64());
    plan.rewritings_considered = static_cast<int>(considered);
    AQV_ASSIGN_OR_RETURN(plan.cost_original, reader.ReadDoubleBits());
    AQV_ASSIGN_OR_RETURN(plan.cost_chosen, reader.ReadDoubleBits());
    AQV_ASSIGN_OR_RETURN(uint64_t num_deps, reader.ReadVarint64());
    plan.dependencies.reserve(num_deps);
    for (uint64_t d = 0; d < num_deps; ++d) {
      AQV_ASSIGN_OR_RETURN(std::string_view dep, reader.ReadLengthPrefixed());
      plan.dependencies.emplace_back(dep);
    }
    recovered_.plans.push_back(std::move(plan));
  }

  AQV_ASSIGN_OR_RETURN(uint64_t num_tables, reader.ReadVarint64());
  std::vector<TableEntry> entries;
  entries.reserve(num_tables);
  for (uint64_t t = 0; t < num_tables; ++t) {
    TableEntry entry;
    AQV_ASSIGN_OR_RETURN(std::string_view name, reader.ReadLengthPrefixed());
    entry.name.assign(name);
    AQV_ASSIGN_OR_RETURN(uint64_t num_columns, reader.ReadVarint64());
    entry.columns.reserve(num_columns);
    for (uint64_t c = 0; c < num_columns; ++c) {
      AQV_ASSIGN_OR_RETURN(std::string_view column,
                           reader.ReadLengthPrefixed());
      entry.columns.emplace_back(column);
    }
    AQV_ASSIGN_OR_RETURN(entry.row_count, reader.ReadVarint64());
    AQV_ASSIGN_OR_RETURN(uint64_t num_pages, reader.ReadVarint64());
    entry.pages.reserve(num_pages);
    for (uint64_t p = 0; p < num_pages; ++p) {
      AQV_ASSIGN_OR_RETURN(uint32_t id, reader.ReadFixed32());
      entry.pages.push_back(id);
    }
    entries.push_back(std::move(entry));
  }

  // Quarantine entries the previous checkpoint persisted: tables whose
  // damage predates that checkpoint stay quarantined even though their
  // pages were rewritten clean from the salvage. A page failing its
  // checksum right now overwrites the entry with the fresher reason in
  // the materialization loop below.
  if (!reader.empty()) {
    AQV_ASSIGN_OR_RETURN(uint64_t num_quarantined, reader.ReadVarint64());
    for (uint64_t q = 0; q < num_quarantined; ++q) {
      AQV_ASSIGN_OR_RETURN(std::string_view name, reader.ReadLengthPrefixed());
      AQV_ASSIGN_OR_RETURN(std::string_view reason,
                           reader.ReadLengthPrefixed());
      recovered_.quarantined_tables.emplace(std::string(name),
                                            std::string(reason));
    }
  }

  // Materialize every stored table, publishing the whole batch at one
  // epoch — recovery lands on a single consistent state, never a torn one.
  // A table whose pages fail their checksum (or decode) is NOT fatal: it is
  // salvaged empty and quarantined, so everything checksummed-clean still
  // comes back and only the damaged table serves errors.
  std::vector<std::pair<std::string, TablePtr>> publish;
  publish.reserve(entries.size());
  for (const TableEntry& entry : entries) {
    Table table(entry.columns);
    Result<std::vector<Row>> rows = ReadRows(entry.pages, entry.row_count);
    if (rows.ok()) {
      Status added = Status::OK();
      for (Row& row : *rows) {
        added = table.AddRow(std::move(row));
        if (!added.ok()) break;
      }
      if (!added.ok()) rows = added;
    }
    if (!rows.ok()) {
      recovered_.quarantined_tables[entry.name] = rows.status().message();
      table = Table(entry.columns);
      if (pages_quarantined_ != nullptr) {
        pages_quarantined_->Increment(entry.pages.size());
      }
    }
    // Damaged pages stay reserved too: the shadow allocator must not hand
    // them out while the quarantined table's debris is still referenced by
    // the live directory.
    live_pages_.insert(entry.pages.begin(), entry.pages.end());
    table_pages_[entry.name] = entry.pages;
    publish.emplace_back(entry.name,
                         std::make_shared<const Table>(std::move(table)));
  }
  recovered_.db.PutAll(std::move(publish));
  return Status::OK();
}

Status StorageEngine::ReplayWal() {
  AQV_ASSIGN_OR_RETURN(WalContents wal, ReadLog(options_.path + ".wal"));
  wal_valid_prefix_ = wal.valid_bytes;

  // Mid-log corruption: a commit between the clean prefix and the intact
  // records after the tear is gone, so no table the log names can be
  // trusted — the lost record's targets are unknowable (its payload is the
  // garbage), but they can only be tables some surviving record also
  // names, or tables whose every trace was in the hole; quarantining every
  // table the log mentions is the sound over-approximation that never
  // serves rows missing an acknowledged commit. Tables only the checkpoint
  // knows are provably unaffected (the WAL is the sole post-checkpoint
  // mutation channel). The clean prefix still replays below — its state IS
  // correct up to the tear, which is the best salvage available.
  if (wal.mid_log_corruption) {
    recovered_.wal_mid_log_corruption = true;
    auto quarantine_tables_of = [this](const std::string& payload) {
      ByteReader reader(payload);
      Result<uint64_t> seq = reader.ReadFixed64();
      if (!seq.ok()) return;
      Result<Delta> delta = DecodeDelta(&reader);
      if (!delta.ok()) return;
      const std::string reason =
          "wal corrupted mid-log: a commit before sequence " +
          std::to_string(*seq) + " is unrecoverable";
      for (const auto& [table, rows] : delta->inserts) {
        recovered_.quarantined_tables.emplace(table, reason);
      }
      for (const auto& [table, rows] : delta->deletes) {
        recovered_.quarantined_tables.emplace(table, reason);
      }
    };
    for (const std::string& payload : wal.payloads) {
      quarantine_tables_of(payload);
    }
    for (const std::string& payload : wal.suspect_payloads) {
      quarantine_tables_of(payload);
    }
  }

  // Strip quarantined tables out of a delta: their salvage is already
  // suspect, and applying (say) a delete of rows a corrupt page lost would
  // abort the whole replay.
  auto strip_quarantined = [this](Delta* delta) {
    for (const auto& [table, reason] : recovered_.quarantined_tables) {
      delta->inserts.erase(table);
      delta->deletes.erase(table);
    }
  };

  // Staged replay applies every record into one in-memory staging image
  // (copy-on-first-touch from the checkpoint) and publishes ONE epoch,
  // instead of a full COW publication per record — E18 measured the latter
  // superlinear (~360 ms at 4k commits; each record re-copied its whole
  // table). The per-record path is kept behind the option as the bench
  // baseline.
  std::map<std::string, Table> staging;
  auto staged_table = [&](const std::string& name) -> Result<Table*> {
    auto it = staging.find(name);
    if (it != staging.end()) return &it->second;
    AQV_ASSIGN_OR_RETURN(const Table* current, recovered_.db.Get(name));
    return &staging.emplace(name, *current).first->second;
  };

  std::set<std::string> touched;
  for (const std::string& payload : wal.payloads) {
    ByteReader reader(payload);
    AQV_ASSIGN_OR_RETURN(uint64_t seq, reader.ReadFixed64());
    // Records the live checkpoint already folded in (a crash between the
    // meta flip and the WAL truncate leaves them behind) replay as no-ops.
    if (seq <= checkpoint_seq_) continue;
    AQV_FAILPOINT("recovery.replay");
    AQV_ASSIGN_OR_RETURN(Delta delta, DecodeDelta(&reader));
    strip_quarantined(&delta);
    if (options_.staged_replay) {
      for (const auto& [table, rows] : delta.inserts) {
        AQV_ASSIGN_OR_RETURN(Table * staged, staged_table(table));
        AQV_RETURN_NOT_OK(staged->AddRows(rows));
      }
      for (const auto& [table, rows] : delta.deletes) {
        AQV_ASSIGN_OR_RETURN(Table * staged, staged_table(table));
        AQV_RETURN_NOT_OK(RemoveRowsFromTable(rows, table, staged));
      }
    } else {
      AQV_RETURN_NOT_OK(ApplyDeltaToBase(delta, &recovered_.db));
    }
    for (const auto& [table, rows] : delta.inserts) touched.insert(table);
    for (const auto& [table, rows] : delta.deletes) touched.insert(table);
    last_seq_ = std::max(last_seq_, seq);
    ++recovered_.replayed_commits;
    if (wal_replayed_ != nullptr) wal_replayed_->Increment();
  }

  // Publish the whole staged tail at one epoch — the same none-or-all
  // contract LoadCheckpoint's PutAll gives the checkpoint image.
  if (!staging.empty()) {
    std::vector<std::pair<std::string, TablePtr>> publish;
    publish.reserve(staging.size());
    for (auto& [name, table] : staging) {
      publish.emplace_back(name,
                           std::make_shared<const Table>(std::move(table)));
    }
    recovered_.db.PutAll(std::move(publish));
  }

  // A stored view whose closure meets a replayed table still holds its
  // pre-replay checkpoint contents; one never checkpointed has none at all.
  // Either way the service must recompute it before first use.
  for (const std::string& view : recovered_.views.ViewNames()) {
    bool stale = !recovered_.db.Has(view);
    if (!stale && !touched.empty()) {
      std::set<std::string> closure = ViewClosure(recovered_.views, view);
      for (const std::string& table : touched) {
        if (closure.count(table) > 0) {
          stale = true;
          break;
        }
      }
    }
    if (stale) recovered_.stale_views.push_back(view);
  }
  return Status::OK();
}

namespace {

/// The one checksum gate every scrub-ish read goes through — recovery
/// materialization and the SCRUB pass alike. An injected `scrub.page` error
/// reads as a corrupt page, so the chaos suite can exercise quarantine
/// without editing files on disk.
Status VerifyDataPage(const Page& page, uint32_t page_id) {
  AQV_FAILPOINT("scrub.page");
  if (!page.VerifyChecksum()) {
    return Status::Unavailable("data page " + std::to_string(page_id) +
                               " failed its checksum");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Row>> StorageEngine::ReadRows(
    const std::vector<uint32_t>& pages, size_t expected_rows) {
  std::vector<Row> rows;
  rows.reserve(expected_rows);
  std::string pending;  // overflow chain being reassembled
  for (uint32_t page_id : pages) {
    AQV_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
    Status status = VerifyDataPage(*page, page_id);
    for (uint16_t slot = 0; status.ok() && slot < page->slot_count();
         ++slot) {
      Result<std::string_view> record = page->GetRecord(slot);
      if (!record.ok()) {
        status = record.status();
        break;
      }
      if (record->empty()) {
        status = Status::Unavailable("data page " + std::to_string(page_id) +
                                     " holds a record with no flag byte");
        break;
      }
      char flag = record->front();
      pending.append(record->data() + 1, record->size() - 1);
      if (flag == kRecordContinues) continue;
      if (flag != kRecordFinal) {
        status = Status::Unavailable(
            "data page " + std::to_string(page_id) +
            " holds a record with an unknown continuation flag");
        break;
      }
      ByteReader reader(pending);
      Result<Row> row = DecodeRow(&reader);
      if (!row.ok() || !reader.empty()) {
        status = row.ok() ? Status::Unavailable(
                                "row record has trailing bytes on page " +
                                std::to_string(page_id))
                          : row.status();
        break;
      }
      rows.push_back(*std::move(row));
      pending.clear();
    }
    pool_->Unpin(page_id, false);
    AQV_RETURN_NOT_OK(status);
  }
  if (!pending.empty()) {
    return Status::Unavailable("overflow row chain ends mid-row");
  }
  if (rows.size() != expected_rows) {
    return Status::Unavailable(
        "stored table holds " + std::to_string(rows.size()) +
        " rows where the directory promised " + std::to_string(expected_rows));
  }
  return rows;
}

uint32_t StorageEngine::AllocatePage() {
  if (!free_pool_.empty()) {
    uint32_t id = *free_pool_.begin();
    free_pool_.erase(free_pool_.begin());
    return id;
  }
  return next_page_++;
}

Status StorageEngine::CheckRowSize(const Row& row) {
  std::string encoded;
  EncodeRow(row, &encoded);
  if (encoded.size() > kMaxRowBytes) {
    return Status::InvalidArgument(
        "row of " + std::to_string(encoded.size()) +
        " encoded bytes exceeds the storage row limit of " +
        std::to_string(kMaxRowBytes) + " bytes");
  }
  return Status::OK();
}

Status StorageEngine::WriteRows(const std::vector<Row>& rows,
                                std::vector<uint32_t>* pages) {
  Page* current = nullptr;
  uint32_t current_id = 0;
  std::string encoded;
  std::string chunk;
  for (const Row& row : rows) {
    encoded.clear();
    EncodeRow(row, &encoded);
    if (encoded.size() > kMaxRowBytes) {
      if (current != nullptr) pool_->Unpin(current_id, true);
      return Status::InvalidArgument(
          "row of " + std::to_string(encoded.size()) +
          " encoded bytes exceeds the storage row limit of " +
          std::to_string(kMaxRowBytes) + " bytes");
    }
    // Rows wider than one page record chain across overflow records: each
    // record is a continuation flag byte plus up to kMaxChunkSize row
    // bytes, reassembled in stream order by ReadRows.
    size_t off = 0;
    bool more = true;
    while (more) {
      size_t len = std::min(kMaxChunkSize, encoded.size() - off);
      more = off + len < encoded.size();
      chunk.clear();
      chunk.push_back(more ? kRecordContinues : kRecordFinal);
      chunk.append(encoded, off, len);
      off += len;
      if (current == nullptr || !current->InsertRecord(chunk).has_value()) {
        if (current != nullptr) pool_->Unpin(current_id, true);
        current_id = AllocatePage();
        AQV_ASSIGN_OR_RETURN(current, pool_->NewPage(current_id));
        pages->push_back(current_id);
        if (!current->InsertRecord(chunk).has_value()) {
          pool_->Unpin(current_id, true);
          return Status::Internal("fresh page rejected a record that fits");
        }
      }
    }
  }
  if (current != nullptr) pool_->Unpin(current_id, true);
  return Status::OK();
}

Status StorageEngine::Checkpoint(const Catalog& catalog,
                                 const ViewRegistry& views, const Database& db,
                                 const std::vector<PlanImage>& plans) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span("storage.checkpoint");
  Clock::time_point checkpoint_start = Clock::now();
  if (wal_ == nullptr || wal_->failed() || GroupFailed()) {
    return Status::Unavailable(
        "storage is fail-stopped after a wal error; restart to recover");
  }

  // Shadow allocation setup: anything the live checkpoint does not
  // reference is fair game, including pages orphaned by earlier failed
  // attempts.
  next_page_ = std::max<uint32_t>(2, disk_->page_count());
  free_pool_.clear();
  for (uint32_t id = 2; id < next_page_; ++id) {
    if (live_pages_.count(id) == 0) free_pool_.insert(id);
  }

  // 1. Stream every stored table's rows into shadow pages.
  std::vector<TableEntry> entries;
  std::vector<std::string> names = db.TableNames();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    AQV_ASSIGN_OR_RETURN(const Table* table, db.Get(name));
    TableEntry entry;
    entry.name = name;
    entry.columns = table->columns();
    entry.row_count = table->num_rows();
    AQV_RETURN_NOT_OK(WriteRows(table->rows(), &entry.pages));
    entries.push_back(std::move(entry));
  }

  // 2. Build the directory blob.
  std::string blob;
  PutFixed32(&blob, kDirMagic);
  std::string catalog_image;
  catalog.SerializeTo(&catalog_image);
  PutLengthPrefixed(&blob, catalog_image);
  std::vector<std::string> view_names = views.ViewNames();
  PutVarint64(&blob, view_names.size());
  for (const std::string& name : view_names) {
    AQV_ASSIGN_OR_RETURN(const ViewDef* def, views.Get(name));
    PutLengthPrefixed(&blob, ToSql(*def));
  }
  PutFixed64(&blob, catalog.version());
  PutFixed64(&blob, views.version());
  PutVarint64(&blob, plans.size());
  for (const PlanImage& plan : plans) {
    PutLengthPrefixed(&blob, plan.key);
    PutLengthPrefixed(&blob, plan.plan_sql);
    blob.push_back(plan.used_materialized_view ? '\x01' : '\x00');
    PutVarint64(&blob, static_cast<uint64_t>(plan.rewritings_considered));
    PutDoubleBits(&blob, plan.cost_original);
    PutDoubleBits(&blob, plan.cost_chosen);
    PutVarint64(&blob, plan.dependencies.size());
    for (const std::string& dep : plan.dependencies) {
      PutLengthPrefixed(&blob, dep);
    }
  }
  PutVarint64(&blob, entries.size());
  for (const TableEntry& entry : entries) {
    PutLengthPrefixed(&blob, entry.name);
    PutVarint64(&blob, entry.columns.size());
    for (const std::string& c : entry.columns) PutLengthPrefixed(&blob, c);
    PutVarint64(&blob, entry.row_count);
    PutVarint64(&blob, entry.pages.size());
    for (uint32_t id : entry.pages) PutFixed32(&blob, id);
  }
  // The quarantine map rides in the directory so corruption evidence
  // survives its own cleanup: this very checkpoint rewrites the rotten
  // pages from the salvage (and recovery truncates a torn WAL tail),
  // either of which would otherwise let the damaged table silently serve
  // salvaged rows after one more restart. Only ClearQuarantinedTable — a
  // repair — removes an entry.
  PutVarint64(&blob, quarantine_.size());
  for (const auto& [name, reason] : quarantine_) {
    PutLengthPrefixed(&blob, name);
    PutLengthPrefixed(&blob, reason);
  }

  // 3. Chunk the blob across directory pages.
  MetaRecord meta;
  meta.generation = generation_ + 1;
  meta.commit_seq = last_seq_;
  meta.blob_size = blob.size();
  for (size_t off = 0; off < blob.size(); off += Page::kMaxRecordSize) {
    size_t len = std::min(Page::kMaxRecordSize, blob.size() - off);
    uint32_t page_id = AllocatePage();
    AQV_ASSIGN_OR_RETURN(Page * page, pool_->NewPage(page_id));
    if (!page->InsertRecord(std::string_view(blob).substr(off, len))
             .has_value()) {
      pool_->Unpin(page_id, true);
      return Status::Internal("directory chunk rejected by a fresh page");
    }
    pool_->Unpin(page_id, true);
    meta.directory_pages.push_back(page_id);
  }
  // 4. Make every shadow page durable before the meta flip.
  std::string meta_record;
  EncodeMeta(meta, &meta_record);
  if (meta_record.size() > Page::kMaxRecordSize) {
    return Status::ResourceExhausted(
        "checkpoint directory spans too many pages for one meta record");
  }
  AQV_RETURN_NOT_OK(pool_->FlushAll());
  AQV_RETURN_NOT_OK(disk_->Sync());

  // 5. The commit point: stamp the OTHER meta page with generation+1 and
  // fsync. Before this instant the previous checkpoint is intact; after
  // it the new one is live.
  Page meta_page;
  uint32_t meta_id = static_cast<uint32_t>(meta.generation % 2);
  meta_page.Init(meta_id);
  if (!meta_page.InsertRecord(meta_record).has_value()) {
    return Status::Internal("meta record rejected by a fresh meta page");
  }
  meta_page.UpdateChecksum();
  AQV_RETURN_NOT_OK(disk_->WritePage(meta_id, meta_page));
  AQV_RETURN_NOT_OK(disk_->Sync());

  generation_ = meta.generation;
  checkpoint_seq_ = meta.commit_seq;
  live_pages_.clear();
  live_pages_.insert(meta.directory_pages.begin(),
                     meta.directory_pages.end());
  directory_pages_ = meta.directory_pages;
  table_pages_.clear();
  for (const TableEntry& entry : entries) {
    live_pages_.insert(entry.pages.begin(), entry.pages.end());
    table_pages_[entry.name] = entry.pages;
  }
  if (checkpoints_ != nullptr) checkpoints_->Increment();
  // Completed checkpoints only: a failed attempt leaves no flipped meta,
  // so timing it would pollute the duration curve with partial work.
  if (checkpoint_latency_ != nullptr) {
    checkpoint_latency_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - checkpoint_start)
            .count()));
  }
  SyncPoolCounters();
  if (span.active()) {
    span.AddAttr("generation", generation_);
    span.AddAttr("tables", static_cast<uint64_t>(entries.size()));
    span.AddAttr("pages", static_cast<uint64_t>(live_pages_.size()));
  }

  // 6. The WAL's history is folded into the checkpoint; drop it. A failure
  // here (including an injected wal.truncate) is survivable — replay skips
  // records at or below checkpoint_seq_ — but is still reported so the
  // chaos harness sees the injection.
  Status truncated = wal_->Truncate();
  if (truncated.ok()) {
    // Rewind the group-commit watermarks to the (now empty) log. Safe
    // against in-flight commits: checkpoint runs with the database
    // quiesced, so no LogCommit is racing these stores.
    std::lock_guard<std::mutex> group_lock(group_mu_);
    wal_synced_offset_ = 0;
    wal_appended_offset_.store(0, std::memory_order_release);
    if (wal_size_gauge_ != nullptr) wal_size_gauge_->Set(0);
  }
  return truncated;
}

void StorageEngine::ClearQuarantinedTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  quarantine_.erase(name);
}

Status StorageEngine::LogCommit(const Delta& delta, QueryStats* stats) {
  Clock::time_point commit_start = Clock::now();
  uint64_t my_end = 0;
  Status result = [&]() -> Status {
    std::unique_lock<std::mutex> lock(mu_);
    if (wal_ == nullptr) {
      return Status::Unavailable("storage engine has no wal attached");
    }
    // Group fail-stop check BEFORE the append: a failed leader fsync
    // poisons the group state but not the writer itself (its appended
    // bytes are intact), so without this a refused commit's record would
    // still land in the file, survive the close, and replay at recovery
    // as a row no client was ever acked for.
    {
      std::lock_guard<std::mutex> group_lock(group_mu_);
      if (group_failed_) {
        return Status::Unavailable(
            "wal writer failed earlier; restart and recover before "
            "committing");
      }
    }
    std::string payload;
    PutFixed64(&payload, last_seq_ + 1);
    EncodeDelta(delta, &payload);
    Status appended = wal_->Append(payload);
    if (stats != nullptr && appended.ok()) {
      stats->wal_bytes += wal_->last_record_bytes();
    }
    AQV_RETURN_NOT_OK(appended);
    ++last_seq_;
    my_end = wal_->size_bytes();
    // Publish how far the log extends only AFTER the write syscall
    // returned: a group leader's acquire-load then never claims bytes
    // that are not fully in the file.
    wal_appended_offset_.store(my_end, std::memory_order_release);
    wal_appended_records_.fetch_add(1, std::memory_order_relaxed);
    if (wal_size_gauge_ != nullptr) {
      wal_size_gauge_->Set(static_cast<int64_t>(my_end));
    }
    if (!options_.fsync_wal) return Status::OK();
    if (!options_.group_commit) {
      // PR 6 behavior (and the group-commit bench baseline): this commit
      // pays its own fsync, serialized under the engine mutex.
      return wal_->Sync();
    }
    lock.unlock();
    return SyncWalGroup(my_end);
  }();
  if (stats != nullptr) {
    // Charged even on failure: the statement paid for the attempt.
    stats->wal_commit_micros += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              commit_start)
            .count());
  }
  return result;
}

Status StorageEngine::SyncWalGroup(uint64_t my_end) {
  std::unique_lock<std::mutex> group_lock(group_mu_);
  for (;;) {
    if (wal_synced_offset_ >= my_end) return Status::OK();
    if (group_failed_) {
      return Status::Unavailable(
          "wal writer failed earlier; restart and recover before committing");
    }
    if (!group_sync_active_) break;
    // A leader is fsyncing (or about to): ride its barrier. Its result
    // either covers this record or the loop elects a new leader.
    group_cv_.wait(group_lock);
  }
  group_sync_active_ = true;
  group_lock.unlock();

  // Leader. Optionally linger so more followers append before the fsync —
  // with a 0 window the batch is whatever accumulated while the previous
  // fsync was in flight.
  if (options_.group_commit_window_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.group_commit_window_micros));
  }
  uint64_t sync_upto = wal_appended_offset_.load(std::memory_order_acquire);
  uint64_t records_upto =
      wal_appended_records_.load(std::memory_order_relaxed);
  Status synced = [&]() -> Status {
    // The chaos suite kills the leader here: its whole batch was appended
    // but never fsynced, so every rider's commit must fail un-acked (each
    // may still survive recovery — the oracle accepts either).
    AQV_FAILPOINT("wal.group_leader");
    std::lock_guard<std::mutex> lock(mu_);
    if (wal_ == nullptr) {
      return Status::Unavailable("storage engine has no wal attached");
    }
    return wal_->Sync();
  }();

  group_lock.lock();
  group_sync_active_ = false;
  if (synced.ok()) {
    if (group_commit_batch_ != nullptr && records_upto > wal_synced_records_) {
      group_commit_batch_->Record(records_upto - wal_synced_records_);
    }
    wal_synced_offset_ = std::max(wal_synced_offset_, sync_upto);
    wal_synced_records_ = std::max(wal_synced_records_, records_upto);
  } else {
    // Mirror the writer's fail-stop: riders of this batch and every later
    // committer refuse cleanly until restart-and-recover.
    group_failed_ = true;
  }
  group_cv_.notify_all();
  if (!synced.ok()) return synced;
  if (wal_synced_offset_ >= my_end) return Status::OK();
  return Status::Internal("group commit fsync did not cover its own record");
}

void StorageEngine::SyncPoolCounters() {
  if (pool_ == nullptr) return;
  uint64_t hits = pool_->hits();
  uint64_t misses = pool_->misses();
  if (pool_hits_ != nullptr && hits > pool_hits_synced_) {
    pool_hits_->Increment(hits - pool_hits_synced_);
  }
  if (pool_misses_ != nullptr && misses > pool_misses_synced_) {
    pool_misses_->Increment(misses - pool_misses_synced_);
  }
  pool_hits_synced_ = hits;
  pool_misses_synced_ = misses;
}

Result<StorageEngine::ScrubReport> StorageEngine::Scrub() {
  std::lock_guard<std::mutex> lock(mu_);
  ScrubReport report;
  // Straight from disk, not through the buffer pool: a cached clean frame
  // must not mask rot in the bytes actually on the platter. Data pages are
  // only ever written (and flushed) inside a checkpoint, so there are no
  // dirtier-in-memory copies to worry about.
  auto page_is_clean = [this](uint32_t id) {
    Page page;
    Status read = disk_->ReadPage(id, &page);
    return read.ok() && VerifyDataPage(page, id).ok();
  };
  for (const auto& [name, pages] : table_pages_) {
    TableScrub& table = report.tables[name];
    for (uint32_t id : pages) {
      ++table.pages;
      ++report.pages_checked;
      if (!page_is_clean(id)) {
        ++table.corrupt_pages;
        ++report.pages_corrupt;
      }
    }
  }
  for (uint32_t id : directory_pages_) {
    ++report.pages_checked;
    if (!page_is_clean(id)) {
      ++report.pages_corrupt;
      ++report.directory_pages_corrupt;
    }
  }
  AQV_ASSIGN_OR_RETURN(WalContents wal, ReadLog(options_.path + ".wal"));
  report.wal_records = wal.payloads.size();
  report.wal_mid_log_corruption = wal.mid_log_corruption;
  report.wal_suspect_records = wal.suspect_payloads.size();
  return report;
}

bool StorageEngine::GroupFailed() const {
  std::lock_guard<std::mutex> lock(group_mu_);
  return group_failed_;
}

bool StorageEngine::NeedsAutoCheckpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr || wal_->failed() || GroupFailed()) return false;
  if (options_.auto_checkpoint_wal_bytes > 0 &&
      wal_->size_bytes() >= options_.auto_checkpoint_wal_bytes) {
    return true;
  }
  return options_.auto_checkpoint_commits > 0 &&
         last_seq_ - checkpoint_seq_ >= options_.auto_checkpoint_commits;
}

bool StorageEngine::OverBackpressureCap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.backpressure_wal_bytes > 0 && wal_ != nullptr &&
         !wal_->failed() && !GroupFailed() &&
         wal_->size_bytes() >= options_.backpressure_wal_bytes;
}

uint64_t StorageEngine::last_commit_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}

uint64_t StorageEngine::checkpoint_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_seq_;
}

uint64_t StorageEngine::wal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ == nullptr ? 0 : wal_->size_bytes();
}

bool StorageEngine::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return (wal_ != nullptr && wal_->failed()) || GroupFailed();
}

}  // namespace aqv
