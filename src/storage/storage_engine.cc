#include "storage/storage_engine.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "base/failpoint.h"
#include "base/serde.h"
#include "base/trace.h"
#include "ir/printer.h"
#include "parser/parser.h"

namespace aqv {

namespace {

constexpr uint32_t kMetaMagic = 0x4d565141;  // "AQVM"
constexpr uint32_t kDirMagic = 0x44565141;   // "AQVD"
constexpr uint32_t kFormatVersion = 1;

using Clock = std::chrono::steady_clock;

/// Parsed contents of a meta-page record.
struct MetaRecord {
  uint64_t generation = 0;
  uint64_t commit_seq = 0;
  uint64_t blob_size = 0;
  std::vector<uint32_t> directory_pages;
};

void EncodeMeta(const MetaRecord& meta, std::string* out) {
  PutFixed32(out, kMetaMagic);
  PutFixed32(out, kFormatVersion);
  PutFixed64(out, meta.generation);
  PutFixed64(out, meta.commit_seq);
  PutFixed64(out, meta.blob_size);
  PutVarint64(out, meta.directory_pages.size());
  for (uint32_t id : meta.directory_pages) PutFixed32(out, id);
}

Result<MetaRecord> DecodeMeta(std::string_view record) {
  ByteReader reader(record);
  AQV_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadFixed32());
  if (magic != kMetaMagic) {
    return Status::InvalidArgument("meta page has wrong magic");
  }
  AQV_ASSIGN_OR_RETURN(uint32_t format, reader.ReadFixed32());
  if (format != kFormatVersion) {
    return Status::Unsupported("db file format " + std::to_string(format) +
                               " is newer than this binary");
  }
  MetaRecord meta;
  AQV_ASSIGN_OR_RETURN(meta.generation, reader.ReadFixed64());
  AQV_ASSIGN_OR_RETURN(meta.commit_seq, reader.ReadFixed64());
  AQV_ASSIGN_OR_RETURN(meta.blob_size, reader.ReadFixed64());
  AQV_ASSIGN_OR_RETURN(uint64_t pages, reader.ReadVarint64());
  meta.directory_pages.reserve(pages);
  for (uint64_t i = 0; i < pages; ++i) {
    AQV_ASSIGN_OR_RETURN(uint32_t id, reader.ReadFixed32());
    meta.directory_pages.push_back(id);
  }
  return meta;
}

/// One stored table in the directory: schema plus where its rows live.
struct TableEntry {
  std::string name;
  std::vector<std::string> columns;
  uint64_t row_count = 0;
  std::vector<uint32_t> pages;
};

/// Base tables a view reads, transitively through other views.
std::set<std::string> ViewClosure(const ViewRegistry& views,
                                  const std::string& name) {
  std::set<std::string> closure;
  std::vector<std::string> stack = {name};
  while (!stack.empty()) {
    std::string current = std::move(stack.back());
    stack.pop_back();
    Result<const ViewDef*> def = views.Get(current);
    if (!def.ok()) continue;
    for (const TableRef& ref : (*def)->query.from) {
      if (!closure.insert(ref.table).second) continue;
      if (views.Has(ref.table)) stack.push_back(ref.table);
    }
  }
  return closure;
}

}  // namespace

void EncodeDelta(const Delta& delta, std::string* out) {
  auto encode_side =
      [out](const std::map<std::string, std::vector<Row>>& side) {
        PutVarint64(out, side.size());
        for (const auto& [table, rows] : side) {
          PutLengthPrefixed(out, table);
          PutVarint64(out, rows.size());
          for (const Row& row : rows) EncodeRow(row, out);
        }
      };
  encode_side(delta.inserts);
  encode_side(delta.deletes);
}

Result<Delta> DecodeDelta(ByteReader* reader) {
  Delta delta;
  auto decode_side =
      [reader](std::map<std::string, std::vector<Row>>* side) -> Status {
    AQV_ASSIGN_OR_RETURN(uint64_t tables, reader->ReadVarint64());
    for (uint64_t t = 0; t < tables; ++t) {
      AQV_ASSIGN_OR_RETURN(std::string_view name,
                           reader->ReadLengthPrefixed());
      AQV_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint64());
      std::vector<Row>& rows = (*side)[std::string(name)];
      rows.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        AQV_ASSIGN_OR_RETURN(Row row, DecodeRow(reader));
        rows.push_back(std::move(row));
      }
    }
    return Status::OK();
  };
  AQV_RETURN_NOT_OK(decode_side(&delta.inserts));
  AQV_RETURN_NOT_OK(decode_side(&delta.deletes));
  return delta;
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    StorageOptions options, MetricsRegistry* metrics) {
  auto engine =
      std::unique_ptr<StorageEngine>(new StorageEngine(std::move(options)));
  AQV_ASSIGN_OR_RETURN(engine->disk_, DiskManager::Open(engine->options_.path));
  engine->pool_ = std::make_unique<BufferPool>(
      engine->disk_.get(), engine->options_.buffer_pool_pages);
  if (metrics != nullptr) {
    engine->disk_->SetMetrics(&metrics->GetCounter("storage.pages_read"),
                              &metrics->GetCounter("storage.pages_written"));
    engine->recoveries_ = &metrics->GetCounter("storage.recoveries");
    engine->checkpoints_ = &metrics->GetCounter("storage.checkpoints");
    engine->wal_replayed_ = &metrics->GetCounter("storage.wal_replayed");
    engine->recovery_ms_ = &metrics->GetGauge("storage.recovery_ms");
    engine->recovery_replay_ms_ =
        &metrics->GetGauge("storage.recovery_replay_ms");
    engine->checkpoint_latency_ =
        &metrics->GetHistogram("storage.checkpoint_latency");
    engine->pool_hits_ = &metrics->GetCounter("storage.pool_hits");
    engine->pool_misses_ = &metrics->GetCounter("storage.pool_misses");
  }
  AQV_RETURN_NOT_OK(engine->Recover(metrics));
  return engine;
}

Status StorageEngine::Recover(MetricsRegistry* metrics) {
  TraceSpan span("storage.recovery");
  Clock::time_point start = Clock::now();

  // Pick the live checkpoint: of the two meta pages, the checksummed,
  // well-formed record with the highest generation wins. A fresh file (or
  // one whose first checkpoint died mid-write) has none — empty database.
  std::optional<MetaRecord> live;
  for (uint32_t meta_id = 0; meta_id <= 1; ++meta_id) {
    if (meta_id >= disk_->page_count()) continue;
    Page page;
    if (!disk_->ReadPage(meta_id, &page).ok()) continue;
    if (!page.VerifyChecksum() || page.slot_count() < 1) continue;
    Result<std::string_view> record = page.GetRecord(0);
    if (!record.ok()) continue;
    Result<MetaRecord> meta = DecodeMeta(*record);
    if (!meta.ok() || meta->generation == 0) continue;
    if (!live.has_value() || meta->generation > live->generation) {
      live = *std::move(meta);
    }
  }

  if (live.has_value()) {
    generation_ = live->generation;
    checkpoint_seq_ = live->commit_seq;
    last_seq_ = live->commit_seq;
    recovered_.from_checkpoint = true;

    // Reassemble the directory blob from its page chain.
    std::string blob;
    blob.reserve(live->blob_size);
    for (uint32_t page_id : live->directory_pages) {
      AQV_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
      if (!page->VerifyChecksum()) {
        pool_->Unpin(page_id, false);
        return Status::Unavailable("directory page " +
                                   std::to_string(page_id) +
                                   " failed its checksum");
      }
      Result<std::string_view> chunk = page->GetRecord(0);
      if (!chunk.ok()) {
        pool_->Unpin(page_id, false);
        return chunk.status();
      }
      blob.append(chunk->data(), chunk->size());
      pool_->Unpin(page_id, false);
    }
    if (blob.size() != live->blob_size) {
      return Status::Unavailable("directory blob truncated: expected " +
                                 std::to_string(live->blob_size) + " bytes, " +
                                 "got " + std::to_string(blob.size()));
    }
    live_pages_.insert(live->directory_pages.begin(),
                       live->directory_pages.end());
    AQV_RETURN_NOT_OK(LoadCheckpoint(blob));
  }

  // Replay is timed separately from whole-recovery: the service's recovery
  // report splits the WAL-replay phase from the view-recompute phase it
  // runs afterwards, so slow restarts can be blamed on the right stage.
  Clock::time_point replay_start = Clock::now();
  AQV_RETURN_NOT_OK(ReplayWal());
  if (recovery_replay_ms_ != nullptr) {
    recovery_replay_ms_->Set(static_cast<int64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              replay_start)
            .count()));
  }
  SyncPoolCounters();

  // Open the writer last: ReplayWal measured the clean prefix, and opening
  // with it trims any torn tail before the first new append.
  AQV_ASSIGN_OR_RETURN(
      wal_, LogWriter::Open(options_.path + ".wal", options_.fsync_wal,
                            wal_valid_prefix_));
  if (metrics != nullptr) {
    wal_->SetMetrics(&metrics->GetCounter("storage.wal_bytes"),
                     &metrics->GetCounter("storage.wal_fsyncs"),
                     &metrics->GetCounter("storage.wal_records"),
                     &metrics->GetHistogram("storage.wal_fsync_latency"));
  }

  recovered_.last_commit_seq = last_seq_;
  uint64_t elapsed_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
  if (recovery_ms_ != nullptr) {
    recovery_ms_->Set(static_cast<int64_t>(elapsed_ms));
  }
  if (recoveries_ != nullptr) recoveries_->Increment();
  if (span.active()) {
    span.AddAttr("replayed_commits", recovered_.replayed_commits);
    span.AddAttr("stale_views",
                 static_cast<uint64_t>(recovered_.stale_views.size()));
    span.AddAttr("from_checkpoint",
                 recovered_.from_checkpoint ? "true" : "false");
  }
  return Status::OK();
}

Status StorageEngine::LoadCheckpoint(const std::string& blob) {
  ByteReader reader(blob);
  AQV_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadFixed32());
  if (magic != kDirMagic) {
    return Status::Unavailable("directory blob has wrong magic");
  }

  AQV_ASSIGN_OR_RETURN(std::string_view catalog_image,
                       reader.ReadLengthPrefixed());
  ByteReader catalog_reader(catalog_image);
  AQV_RETURN_NOT_OK(recovered_.catalog.DeserializeFrom(&catalog_reader));

  // Views travel as their CREATE VIEW SQL; the printed form names every
  // occurrence column explicitly, so re-parsing needs no catalog.
  AQV_ASSIGN_OR_RETURN(uint64_t num_views, reader.ReadVarint64());
  for (uint64_t i = 0; i < num_views; ++i) {
    AQV_ASSIGN_OR_RETURN(std::string_view sql, reader.ReadLengthPrefixed());
    AQV_ASSIGN_OR_RETURN(ViewDef view, ParseView(sql));
    AQV_RETURN_NOT_OK(recovered_.views.Register(std::move(view)));
  }

  AQV_ASSIGN_OR_RETURN(recovered_.plan_catalog_version, reader.ReadFixed64());
  AQV_ASSIGN_OR_RETURN(recovered_.plan_views_version, reader.ReadFixed64());
  AQV_ASSIGN_OR_RETURN(uint64_t num_plans, reader.ReadVarint64());
  for (uint64_t i = 0; i < num_plans; ++i) {
    PlanImage plan;
    AQV_ASSIGN_OR_RETURN(std::string_view key, reader.ReadLengthPrefixed());
    plan.key.assign(key);
    AQV_ASSIGN_OR_RETURN(std::string_view sql, reader.ReadLengthPrefixed());
    plan.plan_sql.assign(sql);
    AQV_ASSIGN_OR_RETURN(std::string_view flags, reader.ReadBytes(1));
    plan.used_materialized_view = flags[0] != 0;
    AQV_ASSIGN_OR_RETURN(uint64_t considered, reader.ReadVarint64());
    plan.rewritings_considered = static_cast<int>(considered);
    AQV_ASSIGN_OR_RETURN(plan.cost_original, reader.ReadDoubleBits());
    AQV_ASSIGN_OR_RETURN(plan.cost_chosen, reader.ReadDoubleBits());
    AQV_ASSIGN_OR_RETURN(uint64_t num_deps, reader.ReadVarint64());
    plan.dependencies.reserve(num_deps);
    for (uint64_t d = 0; d < num_deps; ++d) {
      AQV_ASSIGN_OR_RETURN(std::string_view dep, reader.ReadLengthPrefixed());
      plan.dependencies.emplace_back(dep);
    }
    recovered_.plans.push_back(std::move(plan));
  }

  AQV_ASSIGN_OR_RETURN(uint64_t num_tables, reader.ReadVarint64());
  std::vector<TableEntry> entries;
  entries.reserve(num_tables);
  for (uint64_t t = 0; t < num_tables; ++t) {
    TableEntry entry;
    AQV_ASSIGN_OR_RETURN(std::string_view name, reader.ReadLengthPrefixed());
    entry.name.assign(name);
    AQV_ASSIGN_OR_RETURN(uint64_t num_columns, reader.ReadVarint64());
    entry.columns.reserve(num_columns);
    for (uint64_t c = 0; c < num_columns; ++c) {
      AQV_ASSIGN_OR_RETURN(std::string_view column,
                           reader.ReadLengthPrefixed());
      entry.columns.emplace_back(column);
    }
    AQV_ASSIGN_OR_RETURN(entry.row_count, reader.ReadVarint64());
    AQV_ASSIGN_OR_RETURN(uint64_t num_pages, reader.ReadVarint64());
    entry.pages.reserve(num_pages);
    for (uint64_t p = 0; p < num_pages; ++p) {
      AQV_ASSIGN_OR_RETURN(uint32_t id, reader.ReadFixed32());
      entry.pages.push_back(id);
    }
    entries.push_back(std::move(entry));
  }

  // Materialize every stored table, publishing the whole batch at one
  // epoch — recovery lands on a single consistent state, never a torn one.
  std::vector<std::pair<std::string, TablePtr>> publish;
  publish.reserve(entries.size());
  for (const TableEntry& entry : entries) {
    AQV_ASSIGN_OR_RETURN(std::vector<Row> rows,
                         ReadRows(entry.pages, entry.row_count));
    Table table(entry.columns);
    for (Row& row : rows) {
      AQV_RETURN_NOT_OK(table.AddRow(std::move(row)));
    }
    live_pages_.insert(entry.pages.begin(), entry.pages.end());
    publish.emplace_back(entry.name,
                         std::make_shared<const Table>(std::move(table)));
  }
  recovered_.db.PutAll(std::move(publish));
  return Status::OK();
}

Status StorageEngine::ReplayWal() {
  AQV_ASSIGN_OR_RETURN(WalContents wal, ReadLog(options_.path + ".wal"));
  wal_valid_prefix_ = wal.valid_bytes;

  std::set<std::string> touched;
  for (const std::string& payload : wal.payloads) {
    ByteReader reader(payload);
    AQV_ASSIGN_OR_RETURN(uint64_t seq, reader.ReadFixed64());
    // Records the live checkpoint already folded in (a crash between the
    // meta flip and the WAL truncate leaves them behind) replay as no-ops.
    if (seq <= checkpoint_seq_) continue;
    AQV_FAILPOINT("recovery.replay");
    AQV_ASSIGN_OR_RETURN(Delta delta, DecodeDelta(&reader));
    AQV_RETURN_NOT_OK(ApplyDeltaToBase(delta, &recovered_.db));
    for (const auto& [table, rows] : delta.inserts) touched.insert(table);
    for (const auto& [table, rows] : delta.deletes) touched.insert(table);
    last_seq_ = std::max(last_seq_, seq);
    ++recovered_.replayed_commits;
    if (wal_replayed_ != nullptr) wal_replayed_->Increment();
  }

  // A stored view whose closure meets a replayed table still holds its
  // pre-replay checkpoint contents; one never checkpointed has none at all.
  // Either way the service must recompute it before first use.
  for (const std::string& view : recovered_.views.ViewNames()) {
    bool stale = !recovered_.db.Has(view);
    if (!stale && !touched.empty()) {
      std::set<std::string> closure = ViewClosure(recovered_.views, view);
      for (const std::string& table : touched) {
        if (closure.count(table) > 0) {
          stale = true;
          break;
        }
      }
    }
    if (stale) recovered_.stale_views.push_back(view);
  }
  return Status::OK();
}

Result<std::vector<Row>> StorageEngine::ReadRows(
    const std::vector<uint32_t>& pages, size_t expected_rows) {
  std::vector<Row> rows;
  rows.reserve(expected_rows);
  for (uint32_t page_id : pages) {
    AQV_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
    if (!page->VerifyChecksum()) {
      pool_->Unpin(page_id, false);
      return Status::Unavailable("data page " + std::to_string(page_id) +
                                 " failed its checksum");
    }
    Status status = Status::OK();
    for (uint16_t slot = 0; slot < page->slot_count(); ++slot) {
      Result<std::string_view> record = page->GetRecord(slot);
      if (!record.ok()) {
        status = record.status();
        break;
      }
      ByteReader reader(*record);
      Result<Row> row = DecodeRow(&reader);
      if (!row.ok()) {
        status = row.status();
        break;
      }
      rows.push_back(*std::move(row));
    }
    pool_->Unpin(page_id, false);
    AQV_RETURN_NOT_OK(status);
  }
  if (rows.size() != expected_rows) {
    return Status::Unavailable(
        "stored table holds " + std::to_string(rows.size()) +
        " rows where the directory promised " + std::to_string(expected_rows));
  }
  return rows;
}

uint32_t StorageEngine::AllocatePage() {
  if (!free_pool_.empty()) {
    uint32_t id = *free_pool_.begin();
    free_pool_.erase(free_pool_.begin());
    return id;
  }
  return next_page_++;
}

Status StorageEngine::WriteRows(const std::vector<Row>& rows,
                                std::vector<uint32_t>* pages) {
  Page* current = nullptr;
  uint32_t current_id = 0;
  std::string encoded;
  for (const Row& row : rows) {
    encoded.clear();
    EncodeRow(row, &encoded);
    if (encoded.size() > Page::kMaxRecordSize) {
      if (current != nullptr) pool_->Unpin(current_id, true);
      return Status::Unsupported(
          "row of " + std::to_string(encoded.size()) +
          " encoded bytes exceeds the page record limit of " +
          std::to_string(Page::kMaxRecordSize));
    }
    if (current == nullptr || !current->InsertRecord(encoded).has_value()) {
      if (current != nullptr) pool_->Unpin(current_id, true);
      current_id = AllocatePage();
      AQV_ASSIGN_OR_RETURN(current, pool_->NewPage(current_id));
      pages->push_back(current_id);
      if (!current->InsertRecord(encoded).has_value()) {
        pool_->Unpin(current_id, true);
        return Status::Internal("fresh page rejected a record that fits");
      }
    }
  }
  if (current != nullptr) pool_->Unpin(current_id, true);
  return Status::OK();
}

Status StorageEngine::Checkpoint(const Catalog& catalog,
                                 const ViewRegistry& views, const Database& db,
                                 const std::vector<PlanImage>& plans) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span("storage.checkpoint");
  Clock::time_point checkpoint_start = Clock::now();
  if (wal_ == nullptr || wal_->failed()) {
    return Status::Unavailable(
        "storage is fail-stopped after a wal error; restart to recover");
  }

  // Shadow allocation setup: anything the live checkpoint does not
  // reference is fair game, including pages orphaned by earlier failed
  // attempts.
  next_page_ = std::max<uint32_t>(2, disk_->page_count());
  free_pool_.clear();
  for (uint32_t id = 2; id < next_page_; ++id) {
    if (live_pages_.count(id) == 0) free_pool_.insert(id);
  }

  // 1. Stream every stored table's rows into shadow pages.
  std::vector<TableEntry> entries;
  std::vector<std::string> names = db.TableNames();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    AQV_ASSIGN_OR_RETURN(const Table* table, db.Get(name));
    TableEntry entry;
    entry.name = name;
    entry.columns = table->columns();
    entry.row_count = table->num_rows();
    AQV_RETURN_NOT_OK(WriteRows(table->rows(), &entry.pages));
    entries.push_back(std::move(entry));
  }

  // 2. Build the directory blob.
  std::string blob;
  PutFixed32(&blob, kDirMagic);
  std::string catalog_image;
  catalog.SerializeTo(&catalog_image);
  PutLengthPrefixed(&blob, catalog_image);
  std::vector<std::string> view_names = views.ViewNames();
  PutVarint64(&blob, view_names.size());
  for (const std::string& name : view_names) {
    AQV_ASSIGN_OR_RETURN(const ViewDef* def, views.Get(name));
    PutLengthPrefixed(&blob, ToSql(*def));
  }
  PutFixed64(&blob, catalog.version());
  PutFixed64(&blob, views.version());
  PutVarint64(&blob, plans.size());
  for (const PlanImage& plan : plans) {
    PutLengthPrefixed(&blob, plan.key);
    PutLengthPrefixed(&blob, plan.plan_sql);
    blob.push_back(plan.used_materialized_view ? '\x01' : '\x00');
    PutVarint64(&blob, static_cast<uint64_t>(plan.rewritings_considered));
    PutDoubleBits(&blob, plan.cost_original);
    PutDoubleBits(&blob, plan.cost_chosen);
    PutVarint64(&blob, plan.dependencies.size());
    for (const std::string& dep : plan.dependencies) {
      PutLengthPrefixed(&blob, dep);
    }
  }
  PutVarint64(&blob, entries.size());
  for (const TableEntry& entry : entries) {
    PutLengthPrefixed(&blob, entry.name);
    PutVarint64(&blob, entry.columns.size());
    for (const std::string& c : entry.columns) PutLengthPrefixed(&blob, c);
    PutVarint64(&blob, entry.row_count);
    PutVarint64(&blob, entry.pages.size());
    for (uint32_t id : entry.pages) PutFixed32(&blob, id);
  }

  // 3. Chunk the blob across directory pages.
  MetaRecord meta;
  meta.generation = generation_ + 1;
  meta.commit_seq = last_seq_;
  meta.blob_size = blob.size();
  for (size_t off = 0; off < blob.size(); off += Page::kMaxRecordSize) {
    size_t len = std::min(Page::kMaxRecordSize, blob.size() - off);
    uint32_t page_id = AllocatePage();
    AQV_ASSIGN_OR_RETURN(Page * page, pool_->NewPage(page_id));
    if (!page->InsertRecord(std::string_view(blob).substr(off, len))
             .has_value()) {
      pool_->Unpin(page_id, true);
      return Status::Internal("directory chunk rejected by a fresh page");
    }
    pool_->Unpin(page_id, true);
    meta.directory_pages.push_back(page_id);
  }
  // 4. Make every shadow page durable before the meta flip.
  std::string meta_record;
  EncodeMeta(meta, &meta_record);
  if (meta_record.size() > Page::kMaxRecordSize) {
    return Status::ResourceExhausted(
        "checkpoint directory spans too many pages for one meta record");
  }
  AQV_RETURN_NOT_OK(pool_->FlushAll());
  AQV_RETURN_NOT_OK(disk_->Sync());

  // 5. The commit point: stamp the OTHER meta page with generation+1 and
  // fsync. Before this instant the previous checkpoint is intact; after
  // it the new one is live.
  Page meta_page;
  uint32_t meta_id = static_cast<uint32_t>(meta.generation % 2);
  meta_page.Init(meta_id);
  if (!meta_page.InsertRecord(meta_record).has_value()) {
    return Status::Internal("meta record rejected by a fresh meta page");
  }
  meta_page.UpdateChecksum();
  AQV_RETURN_NOT_OK(disk_->WritePage(meta_id, meta_page));
  AQV_RETURN_NOT_OK(disk_->Sync());

  generation_ = meta.generation;
  checkpoint_seq_ = meta.commit_seq;
  live_pages_.clear();
  live_pages_.insert(meta.directory_pages.begin(),
                     meta.directory_pages.end());
  for (const TableEntry& entry : entries) {
    live_pages_.insert(entry.pages.begin(), entry.pages.end());
  }
  if (checkpoints_ != nullptr) checkpoints_->Increment();
  // Completed checkpoints only: a failed attempt leaves no flipped meta,
  // so timing it would pollute the duration curve with partial work.
  if (checkpoint_latency_ != nullptr) {
    checkpoint_latency_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - checkpoint_start)
            .count()));
  }
  SyncPoolCounters();
  if (span.active()) {
    span.AddAttr("generation", generation_);
    span.AddAttr("tables", static_cast<uint64_t>(entries.size()));
    span.AddAttr("pages", static_cast<uint64_t>(live_pages_.size()));
  }

  // 6. The WAL's history is folded into the checkpoint; drop it. A failure
  // here (including an injected wal.truncate) is survivable — replay skips
  // records at or below checkpoint_seq_ — but is still reported so the
  // chaos harness sees the injection.
  return wal_->Truncate();
}

Status StorageEngine::LogCommit(const Delta& delta, QueryStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) {
    return Status::Unavailable("storage engine has no wal attached");
  }
  std::string payload;
  PutFixed64(&payload, last_seq_ + 1);
  EncodeDelta(delta, &payload);
  Clock::time_point commit_start = Clock::now();
  Status appended = wal_->AppendCommit(payload);
  if (stats != nullptr) {
    // Charged even on failure: the statement paid for the attempt.
    stats->wal_commit_micros += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              commit_start)
            .count());
    if (appended.ok()) stats->wal_bytes += wal_->last_record_bytes();
  }
  AQV_RETURN_NOT_OK(appended);
  ++last_seq_;
  return Status::OK();
}

void StorageEngine::SyncPoolCounters() {
  if (pool_ == nullptr) return;
  uint64_t hits = pool_->hits();
  uint64_t misses = pool_->misses();
  if (pool_hits_ != nullptr && hits > pool_hits_synced_) {
    pool_hits_->Increment(hits - pool_hits_synced_);
  }
  if (pool_misses_ != nullptr && misses > pool_misses_synced_) {
    pool_misses_->Increment(misses - pool_misses_synced_);
  }
  pool_hits_synced_ = hits;
  pool_misses_synced_ = misses;
}

uint64_t StorageEngine::last_commit_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}

uint64_t StorageEngine::checkpoint_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_seq_;
}

uint64_t StorageEngine::wal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ == nullptr ? 0 : wal_->size_bytes();
}

bool StorageEngine::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ != nullptr && wal_->failed();
}

}  // namespace aqv
