#ifndef AQV_MAINTAIN_INCREMENTAL_H_
#define AQV_MAINTAIN_INCREMENTAL_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "exec/evaluator.h"
#include "exec/table.h"
#include "ir/query.h"

namespace aqv {

/// A batch of base-table changes.
struct Delta {
  std::map<std::string, std::vector<Row>> inserts;
  std::map<std::string, std::vector<Row>> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
  bool has_deletes() const;
};

/// Incremental maintenance of a materialized view under base-table change
/// batches — the machinery the paper's warehousing motivation presumes
/// (Section 1; cf. its citations [BLT86, GMS93]). Without it, every
/// rewriting win in this library would be paid back at refresh time.
///
/// The maintainer implements the counting algorithm specialized to the
/// single-block dialect:
///
///  - the view's join is differenced by telescoping over its FROM entries
///    (Δ(R ⋈ S) = ΔR ⋈ S_old plus R_new ⋈ ΔS, generalized to k tables),
///    with single-table and join predicates applied to the delta terms;
///  - conjunctive views append / remove row occurrences (multiset exact);
///  - grouped views update SUM and COUNT outputs in place; group liveness
///    is tracked through a COUNT output, so *deletes require the view to
///    select a COUNT column* (otherwise Unsupported — recompute instead);
///  - MIN/MAX outputs absorb inserts; a delete that touches the current
///    extremum of a group returns Unsupported (the new extremum is not
///    derivable from the summary; recompute);
///  - AVG outputs and views with HAVING or ratio items are Unsupported
///    (HAVING-filtered groups would need the suppressed groups retained).
///
/// "Unsupported" is a safe refusal: the caller falls back to full
/// recomputation (Evaluator::MaterializeView).
class IncrementalMaintainer {
 public:
  /// Checks the view shape and captures what Apply needs. Fails with
  /// Unsupported for shapes listed above (HAVING, ratio items, AVG).
  /// `eval_options` configures the evaluator the maintainer runs delta
  /// terms through — the service passes its own, so batched delta
  /// application uses the same (vectorized or row) engine as queries.
  static Result<IncrementalMaintainer> Create(
      const ViewDef& view, EvalOptions eval_options = EvalOptions{});

  /// Applies `delta` to `materialized` (the view's current contents).
  /// `before` must hold every base table at its pre-delta state. Returns
  /// Unsupported when the change cannot be folded in (see above); the
  /// materialization is untouched in that case.
  Status Apply(const Delta& delta, const Database& before,
               Table* materialized) const;

  /// Apply() against a copy: returns the maintained contents as a new Table
  /// and never mutates `materialized`. This is the write path's entry point —
  /// the service stages the result and publishes it together with the base
  /// tables in one epoch, so a refusal or fault mid-maintenance leaves the
  /// published state untouched.
  Result<Table> ApplyToCopy(const Delta& delta, const Database& before,
                            const Table& materialized) const;

  const ViewDef& view() const { return view_; }

 private:
  IncrementalMaintainer(ViewDef view, EvalOptions eval_options)
      : view_(std::move(view)), eval_options_(eval_options) {}

  // Signed core rows: the view's FROM ⋈ WHERE output restricted to delta
  // terms, each with weight +1 (insert) or -1 (delete).
  struct SignedRow {
    Row row;  // layout: concatenation of the view's FROM columns
    int weight;
  };
  Result<std::vector<SignedRow>> DeltaCoreRows(const Delta& delta,
                                               const Database& before) const;

  ViewDef view_;
  EvalOptions eval_options_;
};

/// Convenience: applies `delta` to the base tables stored in `db` (the
/// "after" state the next maintenance round starts from).
Status ApplyDeltaToBase(const Delta& delta, Database* db);

}  // namespace aqv

#endif  // AQV_MAINTAIN_INCREMENTAL_H_
