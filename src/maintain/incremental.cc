#include "maintain/incremental.h"

#include <algorithm>
#include <unordered_map>

#include "base/failpoint.h"
#include "exec/evaluator.h"
#include "exec/expression.h"
#include "exec/operators.h"
#include "ir/validate.h"

namespace aqv {

bool Delta::has_deletes() const {
  for (const auto& [table, rows] : deletes) {
    if (!rows.empty()) return true;
  }
  return false;
}

Status ApplyDeltaToBase(const Delta& delta, Database* db) {
  for (const auto& [name, rows] : delta.inserts) {
    AQV_ASSIGN_OR_RETURN(const Table* t, db->Get(name));
    Table updated = *t;
    AQV_RETURN_NOT_OK(updated.AddRows(rows));
    db->Put(name, std::move(updated));
  }
  for (const auto& [name, rows] : delta.deletes) {
    AQV_ASSIGN_OR_RETURN(const Table* t, db->Get(name));
    // Remove one occurrence per delete row.
    std::unordered_map<Row, int64_t, RowHash, RowEq> to_remove;
    for (const Row& row : rows) ++to_remove[row];
    Table updated(t->columns());
    std::vector<Row> kept;
    kept.reserve(t->num_rows());
    for (const Row& row : t->rows()) {
      auto it = to_remove.find(row);
      if (it != to_remove.end() && it->second > 0) {
        --it->second;
        continue;
      }
      kept.push_back(row);
    }
    AQV_RETURN_NOT_OK(updated.AddRows(std::move(kept)));
    for (const auto& [row, remaining] : to_remove) {
      if (remaining > 0) {
        return Status::InvalidArgument(
            "delete batch removes a row not present in '" + name + "'");
      }
    }
    db->Put(name, std::move(updated));
  }
  return Status::OK();
}

Result<IncrementalMaintainer> IncrementalMaintainer::Create(
    const ViewDef& view, EvalOptions eval_options) {
  AQV_RETURN_NOT_OK(ValidateQuery(view.query));
  const Query& q = view.query;
  if (!q.having.empty()) {
    return Status::Unsupported(
        "views with HAVING are not incrementally maintainable (suppressed "
        "groups are not retained)");
  }
  if (q.distinct) {
    return Status::Unsupported("DISTINCT views need duplicate counts");
  }
  for (const SelectItem& s : q.select) {
    if (s.kind == SelectItem::Kind::kRatio) {
      return Status::Unsupported("ratio outputs are not maintainable");
    }
    if (s.kind == SelectItem::Kind::kAggregate && s.agg == AggFn::kAvg) {
      return Status::Unsupported(
          "AVG outputs are not maintainable; materialize SUM and COUNT");
    }
  }
  if (q.IsAggregation()) {
    // Every grouping column must be an output, or group identities are
    // ambiguous in the materialization.
    std::vector<std::string> colsel = q.ColSel();
    for (const std::string& g : q.group_by) {
      if (std::find(colsel.begin(), colsel.end(), g) == colsel.end()) {
        return Status::Unsupported("grouping column '" + g +
                                   "' is not in the view's SELECT clause");
      }
    }
  }
  return IncrementalMaintainer(view, eval_options);
}

namespace {

// Scalar value of an aggregate argument against a core row.
Value ArgValue(const AggArg& arg, const Row& row, const ColumnIndexMap& layout) {
  auto get = [&](const std::string& col) -> Value {
    auto it = layout.find(col);
    if (it == layout.end()) return Value::Null();
    return row[it->second];
  };
  Value v = get(arg.column);
  if (!arg.scaled()) return v;
  return NumericProduct(v, get(arg.multiplier));
}

// Numeric a + sign * b for SUM maintenance (NULLs propagate like SQL SUM
// over no rows: NULL + x = x).
Value AddSigned(const Value& a, const Value& b, int sign) {
  if (b.is_null()) return a;
  if (a.is_null()) {
    if (sign > 0) return b;
    // Subtracting from nothing: negate.
    if (b.type() == ValueType::kInt64) return Value::Int64(-b.int64());
    return Value::Double(-b.AsDouble());
  }
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    return Value::Int64(a.int64() + sign * b.int64());
  }
  return Value::Double(a.AsDouble() + sign * b.AsDouble());
}

}  // namespace

Result<std::vector<IncrementalMaintainer::SignedRow>>
IncrementalMaintainer::DeltaCoreRows(const Delta& delta,
                                     const Database& before) const {
  const Query& q = view_.query;
  size_t k = q.from.size();

  // "After" state for the telescoping prefix, built lazily: a single-table
  // view (the common summary-table case) never needs it.
  Database after;
  bool after_built = false;
  auto ensure_after = [&]() -> Status {
    if (after_built) return Status::OK();
    after = before;
    after_built = true;
    return ApplyDeltaToBase(delta, &after);
  };

  // A conjunctive core query over synthetic per-occurrence table names, so
  // each occurrence can be bound to a different snapshot (after / delta /
  // before).
  Query core;
  core.from = q.from;
  core.where = q.where;
  for (size_t i = 0; i < k; ++i) {
    core.from[i].table = "@occ" + std::to_string(i);
    for (const std::string& c : core.from[i].columns) {
      core.select.push_back(SelectItem::MakeColumn(c));
    }
  }

  std::vector<SignedRow> out;
  for (size_t i = 0; i < k; ++i) {
    const std::string& table = q.from[i].table;
    for (int sign : {+1, -1}) {
      const auto& changes = sign > 0 ? delta.inserts : delta.deletes;
      auto it = changes.find(table);
      if (it == changes.end() || it->second.empty()) continue;

      Database term_db;
      for (size_t j = 0; j < k; ++j) {
        if (j < i) AQV_RETURN_NOT_OK(ensure_after());
        const Database& source = j < i ? after : before;
        if (j == i) {
          AQV_ASSIGN_OR_RETURN(const Table* base, before.Get(table));
          Table dt(base->columns());
          AQV_RETURN_NOT_OK(dt.AddRows(it->second));
          term_db.Put(core.from[j].table, std::move(dt));
        } else {
          AQV_ASSIGN_OR_RETURN(const Table* t, source.Get(q.from[j].table));
          term_db.Put(core.from[j].table, *t);
        }
      }
      Evaluator eval(&term_db, nullptr, eval_options_);
      AQV_ASSIGN_OR_RETURN(Table term_rows, eval.Execute(core));
      for (const Row& row : term_rows.rows()) {
        out.push_back(SignedRow{row, sign});
      }
    }
  }
  return out;
}

Result<Table> IncrementalMaintainer::ApplyToCopy(
    const Delta& delta, const Database& before,
    const Table& materialized) const {
  Table copy = materialized;
  AQV_RETURN_NOT_OK(Apply(delta, before, &copy));
  return copy;
}

Status IncrementalMaintainer::Apply(const Delta& delta, const Database& before,
                                    Table* materialized) const {
  AQV_FAILPOINT("maintain.apply");
  if (delta.empty()) return Status::OK();
  const Query& q = view_.query;

  AQV_ASSIGN_OR_RETURN(std::vector<SignedRow> cores,
                       DeltaCoreRows(delta, before));
  if (cores.empty()) return Status::OK();

  ColumnIndexMap layout;
  {
    int offset = 0;
    for (const TableRef& t : q.from) {
      for (const std::string& c : t.columns) layout[c] = offset++;
    }
  }

  // ---- Conjunctive views: append / remove projected occurrences. ----
  if (q.IsConjunctive()) {
    // Net the signed projections first: when one batch both inserts and
    // deletes rows of the same table (an UPDATE, say) and the table occurs
    // more than once in the view, the telescoped terms contain insert×delete
    // cross products — equal rows of opposite sign that must cancel against
    // EACH OTHER, not against the stored materialization.
    std::unordered_map<Row, int64_t, RowHash, RowEq> net;
    for (const SignedRow& core : cores) {
      Row projected;
      projected.reserve(q.select.size());
      for (const SelectItem& s : q.select) {
        projected.push_back(core.row[layout.at(s.column)]);
      }
      net[std::move(projected)] += core.weight;
    }

    std::vector<Row> new_rows = materialized->rows();
    std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq> index;
    for (size_t r = 0; r < new_rows.size(); ++r) index[new_rows[r]].push_back(r);
    std::vector<bool> removed(new_rows.size(), false);

    std::vector<Row> appended;
    for (auto& [projected, weight] : net) {
      for (; weight > 0; --weight) {
        appended.push_back(projected);
      }
      if (weight == 0) continue;
      auto it = index.find(projected);
      if (it == index.end()) {
        return Status::Internal(
            "delta removes a view row absent from the materialization");
      }
      for (size_t r : it->second) {
        if (weight == 0) break;
        if (!removed[r]) {
          removed[r] = true;
          ++weight;
        }
      }
      if (weight < 0) {
        return Status::Internal(
            "delta removes a view row absent from the materialization");
      }
    }
    Table result(materialized->columns());
    for (size_t r = 0; r < new_rows.size(); ++r) {
      if (!removed[r]) {
        AQV_RETURN_NOT_OK(result.AddRow(std::move(new_rows[r])));
      }
    }
    for (Row& row : appended) {
      AQV_RETURN_NOT_OK(result.AddRow(std::move(row)));
    }
    *materialized = std::move(result);
    return Status::OK();
  }

  // ---- Grouped views: fold signed updates into the aggregates. ----
  // Positions of grouping columns and of a COUNT output in the view schema.
  std::vector<int> group_positions;
  for (const std::string& g : q.group_by) {
    for (size_t p = 0; p < q.select.size(); ++p) {
      if (q.select[p].kind == SelectItem::Kind::kColumn &&
          q.select[p].column == g) {
        group_positions.push_back(static_cast<int>(p));
        break;
      }
    }
  }
  int count_position = -1;
  for (size_t p = 0; p < q.select.size(); ++p) {
    if (q.select[p].kind == SelectItem::Kind::kAggregate &&
        q.select[p].agg == AggFn::kCount) {
      count_position = static_cast<int>(p);
      break;
    }
  }
  bool has_negative =
      std::any_of(cores.begin(), cores.end(),
                  [](const SignedRow& s) { return s.weight < 0; });
  if (has_negative && count_position < 0) {
    return Status::Unsupported(
        "deletes need a COUNT output to track group liveness");
  }

  // Group key (canonical values of grouping columns) -> signed updates.
  struct GroupUpdate {
    Row group_values;                       // as they appear in core rows
    std::vector<Value> sum_delta;           // per select position (SUM)
    std::vector<int64_t> count_delta;       // per select position (COUNT)
    std::vector<std::vector<Value>> mins;   // inserted values per MIN pos
    std::vector<std::vector<Value>> maxs;   // inserted values per MAX pos
    std::vector<std::vector<Value>> deleted;  // deleted values per pos
  };
  size_t width = q.select.size();
  std::unordered_map<Row, GroupUpdate, RowHash, RowEq> updates;

  for (const SignedRow& core : cores) {
    Row key;
    key.reserve(q.group_by.size());
    for (const std::string& g : q.group_by) {
      key.push_back(core.row[layout.at(g)]);
    }
    auto [it, inserted] = updates.try_emplace(key);
    GroupUpdate& u = it->second;
    if (inserted) {
      u.group_values = key;
      u.sum_delta.assign(width, Value::Null());
      u.count_delta.assign(width, 0);
      u.mins.resize(width);
      u.maxs.resize(width);
      u.deleted.resize(width);
    }
    for (size_t p = 0; p < width; ++p) {
      const SelectItem& s = q.select[p];
      if (s.kind != SelectItem::Kind::kAggregate) continue;
      Value v = ArgValue(s.arg, core.row, layout);
      switch (s.agg) {
        case AggFn::kSum:
          u.sum_delta[p] = AddSigned(u.sum_delta[p], v, core.weight);
          break;
        case AggFn::kCount:
          if (!v.is_null()) u.count_delta[p] += core.weight;
          break;
        case AggFn::kMin:
          (core.weight > 0 ? u.mins[p] : u.deleted[p]).push_back(v);
          break;
        case AggFn::kMax:
          (core.weight > 0 ? u.maxs[p] : u.deleted[p]).push_back(v);
          break;
        case AggFn::kAvg:
          break;  // rejected in Create()
      }
    }
  }

  // Index the materialization by group key and merge (into a copy, so a
  // refusal leaves the input untouched).
  std::vector<Row> rows = materialized->rows();
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  for (size_t r = 0; r < rows.size(); ++r) {
    Row key;
    key.reserve(group_positions.size());
    for (int p : group_positions) key.push_back(rows[r][p]);
    index[std::move(key)] = r;
  }

  std::vector<Row> added;
  std::vector<bool> dead(rows.size(), false);
  for (auto& [key, u] : updates) {
    auto it = index.find(key);
    if (it == index.end()) {
      // A group absent from the materialization can still see deletes when
      // one batch inserts and deletes rows of a self-joined table: the
      // telescoped cross terms land signed updates on a key that only the
      // same batch created. Folding those needs the inserts and deletes
      // cancelled value-by-value (MIN/MAX have no signed form); punt to the
      // full-recompute fallback instead.
      for (size_t p = 0; p < width; ++p) {
        if (!u.deleted[p].empty()) {
          return Status::Unsupported(
              "a delete lands in a group absent from the materialization; "
              "recompute");
        }
      }
      Row row(width, Value::Null());
      for (size_t i = 0; i < group_positions.size(); ++i) {
        row[group_positions[i]] = u.group_values[i];
      }
      for (size_t p = 0; p < width; ++p) {
        const SelectItem& s = q.select[p];
        if (s.kind != SelectItem::Kind::kAggregate) continue;
        switch (s.agg) {
          case AggFn::kSum:
            row[p] = u.sum_delta[p];
            break;
          case AggFn::kCount:
            row[p] = Value::Int64(u.count_delta[p]);
            break;
          case AggFn::kMin: {
            Aggregator agg(AggFn::kMin);
            for (const Value& v : u.mins[p]) agg.Add(v);
            row[p] = agg.Finish();
            break;
          }
          case AggFn::kMax: {
            Aggregator agg(AggFn::kMax);
            for (const Value& v : u.maxs[p]) agg.Add(v);
            row[p] = agg.Finish();
            break;
          }
          case AggFn::kAvg:
            break;
        }
      }
      if (count_position < 0 || row[count_position].int64() > 0) {
        added.push_back(std::move(row));
      }
      continue;
    }

    Row& row = rows[it->second];
    // MIN/MAX first: a delete touching the extremum forces recomputation —
    // unless the same batch inserts a covering value into the group (>= the
    // extremum for MAX, <= for MIN). Every surviving old value is bounded by
    // the old extremum, so the covering insert dominates and the ordinary
    // merge below yields the correct new extremum.
    for (size_t p = 0; p < width; ++p) {
      const SelectItem& s = q.select[p];
      if (s.kind != SelectItem::Kind::kAggregate) continue;
      if (s.agg != AggFn::kMin && s.agg != AggFn::kMax) continue;
      bool extremum_deleted = false;
      for (const Value& v : u.deleted[p]) {
        if (!v.is_null() && v.Compare(row[p]) == 0) {
          extremum_deleted = true;
          break;
        }
      }
      if (!extremum_deleted) continue;
      bool covered = false;
      const std::vector<Value>& inserted =
          s.agg == AggFn::kMax ? u.maxs[p] : u.mins[p];
      for (const Value& v : inserted) {
        if (v.is_null()) continue;
        int cmp = v.Compare(row[p]);
        if (s.agg == AggFn::kMax ? cmp >= 0 : cmp <= 0) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return Status::Unsupported(
            "a delete removes the current extremum of a group; recompute");
      }
    }
    for (size_t p = 0; p < width; ++p) {
      const SelectItem& s = q.select[p];
      if (s.kind != SelectItem::Kind::kAggregate) continue;
      switch (s.agg) {
        case AggFn::kSum:
          row[p] = AddSigned(row[p], u.sum_delta[p], +1);
          break;
        case AggFn::kCount:
          row[p] = Value::Int64(row[p].int64() + u.count_delta[p]);
          break;
        case AggFn::kMin: {
          Aggregator agg(AggFn::kMin);
          agg.Add(row[p]);
          for (const Value& v : u.mins[p]) agg.Add(v);
          row[p] = agg.Finish();
          break;
        }
        case AggFn::kMax: {
          Aggregator agg(AggFn::kMax);
          agg.Add(row[p]);
          for (const Value& v : u.maxs[p]) agg.Add(v);
          row[p] = agg.Finish();
          break;
        }
        case AggFn::kAvg:
          break;
      }
    }
    if (count_position >= 0 && row[count_position].int64() <= 0) {
      dead[it->second] = true;
    }
  }

  Table result(materialized->columns());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (!dead[r]) {
      AQV_RETURN_NOT_OK(result.AddRow(std::move(rows[r])));
    }
  }
  for (Row& row : added) {
    AQV_RETURN_NOT_OK(result.AddRow(std::move(row)));
  }
  *materialized = std::move(result);
  return Status::OK();
}

}  // namespace aqv
