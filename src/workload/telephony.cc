#include "workload/telephony.h"

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>

#include "ir/builder.h"

namespace aqv {

namespace {

void DieOnError(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "telephony workload: %s\n", s.ToString().c_str());
    std::abort();
  }
}

}  // namespace

TelephonyWorkload MakeTelephonyWorkload(const TelephonyParams& params) {
  TelephonyWorkload w;

  // ---- Catalog (Example 1.1 schemas, underlined columns are keys). ----
  TableDef customer("Customer",
                    {"Cust_Id", "Cust_Name", "Area_Code", "Phone_Number"});
  DieOnError(customer.AddKeyByName({"Cust_Id"}));
  TableDef plans("Calling_Plans", {"Plan_Id", "Plan_Name"});
  DieOnError(plans.AddKeyByName({"Plan_Id"}));
  TableDef calls("Calls", {"Call_Id", "Cust_Id", "Plan_Id", "Day", "Month",
                           "Year", "Charge"});
  DieOnError(calls.AddKeyByName({"Call_Id"}));
  DieOnError(w.catalog.AddTable(customer));
  DieOnError(w.catalog.AddTable(plans));
  DieOnError(w.catalog.AddTable(calls));

  // ---- Data. ----
  std::mt19937_64 rng(params.seed);
  std::uniform_int_distribution<int> plan_dist(0, params.num_plans - 1);
  std::uniform_int_distribution<int> cust_dist(0, params.num_customers - 1);
  std::uniform_int_distribution<int> day_dist(1, 28);
  std::uniform_int_distribution<int> month_dist(1, 12);
  std::uniform_int_distribution<int> year_dist(
      params.first_year, params.first_year + params.num_years - 1);
  std::uniform_real_distribution<double> charge_dist(0.05, params.max_charge);

  Table customer_t(customer.columns());
  for (int c = 0; c < params.num_customers; ++c) {
    customer_t.AddRowOrDie({Value::Int64(c),
                            Value::String("customer_" + std::to_string(c)),
                            Value::Int64(200 + c % 800),
                            Value::Int64(5550000 + c)});
  }
  Table plans_t(plans.columns());
  for (int p = 0; p < params.num_plans; ++p) {
    plans_t.AddRowOrDie(
        {Value::Int64(p), Value::String("plan_" + std::to_string(p))});
  }
  Table calls_t(calls.columns());
  for (int c = 0; c < params.num_calls; ++c) {
    calls_t.AddRowOrDie({Value::Int64(c), Value::Int64(cust_dist(rng)),
                         Value::Int64(plan_dist(rng)),
                         Value::Int64(day_dist(rng)),
                         Value::Int64(month_dist(rng)),
                         Value::Int64(year_dist(rng)),
                         Value::Double(charge_dist(rng))});
  }
  w.db.Put("Customer", std::move(customer_t));
  w.db.Put("Calling_Plans", std::move(plans_t));
  w.db.Put("Calls", std::move(calls_t));

  // ---- The summary view V1 (monthly earnings per plan). ----
  Query v1 = QueryBuilder()
                 .From("Calls", {"vCall_Id", "vCust_Id", "vPlan_Id_1", "vDay",
                                 "vMonth", "vYear", "vCharge"})
                 .From("Calling_Plans", {"vPlan_Id_2", "vPlan_Name"})
                 .Select("vPlan_Id_1")
                 .Select("vPlan_Name")
                 .Select("vMonth")
                 .Select("vYear")
                 .SelectAgg(AggFn::kSum, "vCharge", "Monthly_Earnings")
                 .WhereCols("vPlan_Id_1", CmpOp::kEq, "vPlan_Id_2")
                 .GroupBy("vPlan_Id_1")
                 .GroupBy("vPlan_Name")
                 .GroupBy("vMonth")
                 .GroupBy("vYear")
                 .BuildOrDie();
  DieOnError(w.views.Register(ViewDef{w.summary_view, std::move(v1)}));

  // ---- The query Q: plans that earned less than the threshold in 1995. ----
  w.query = QueryBuilder()
                .From("Calls", {"Call_Id", "Cust_Id", "Plan_Id_1", "Day",
                                "Month", "Year", "Charge"})
                .From("Calling_Plans", {"Plan_Id_2", "Plan_Name"})
                .Select("Plan_Id_2")
                .Select("Plan_Name")
                .SelectAgg(AggFn::kSum, "Charge", "Total_Earnings")
                .WhereCols("Plan_Id_1", CmpOp::kEq, "Plan_Id_2")
                .WhereConst("Year", CmpOp::kEq, Value::Int64(1995))
                .GroupBy("Plan_Id_2")
                .GroupBy("Plan_Name")
                .HavingAgg(AggFn::kSum, "Charge", CmpOp::kLt,
                           Value::Double(params.earnings_threshold))
                .BuildOrDie();
  return w;
}

}  // namespace aqv
