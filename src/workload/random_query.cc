#include "workload/random_query.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "ir/validate.h"
#include "workload/random_db.h"

namespace aqv {

namespace {

struct SchemaTable {
  const char* name;
  std::vector<const char*> columns;
};

const std::vector<SchemaTable>& FixedSchema() {
  static const std::vector<SchemaTable>* kSchema = new std::vector<SchemaTable>{
      {"R1", {"A", "B", "C", "D"}},
      {"R2", {"E", "F"}},
      {"R3", {"G", "H"}},
  };
  return *kSchema;
}

const std::vector<AggFn> kAggFns = {AggFn::kMin, AggFn::kMax, AggFn::kSum,
                                    AggFn::kCount};

}  // namespace

RandomWorkloadGen::RandomWorkloadGen(uint64_t seed) : rng_(seed) {
  for (const SchemaTable& t : FixedSchema()) {
    std::vector<std::string> cols(t.columns.begin(), t.columns.end());
    Status s = catalog_.AddTable(TableDef(t.name, std::move(cols)));
    if (!s.ok()) {
      std::fprintf(stderr, "RandomWorkloadGen: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
}

int RandomWorkloadGen::Uniform(int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng_);
}

bool RandomWorkloadGen::Chance(double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
}

Database RandomWorkloadGen::NextDatabase(int rows_per_table, int domain) {
  Database db;
  for (const std::string& name : catalog_.TableNames()) {
    const TableDef* def = *catalog_.GetTable(name);
    db.Put(name, MakeRandomTable(*def, rows_per_table, domain, &rng_));
  }
  return db;
}

Database RandomWorkloadGen::NextDatabase(int rows_per_table, int domain,
                                         uint64_t seed) const {
  std::mt19937_64 rng(seed);
  Database db;
  for (const std::string& name : catalog_.TableNames()) {
    const TableDef* def = *catalog_.GetTable(name);
    db.Put(name, MakeRandomTable(*def, rows_per_table, domain, &rng));
  }
  return db;
}

Query RandomWorkloadGen::RandomQuery(const RandomPairConfig& config) {
  const auto& schema = FixedSchema();
  Query q;

  // FROM: 1..max occurrences, repeats allowed.
  int num_tables = Uniform(1, config.max_query_tables);
  std::vector<std::string> all_cols;
  for (int i = 0; i < num_tables; ++i) {
    const SchemaTable& t = schema[Uniform(0, static_cast<int>(schema.size()) - 1)];
    TableRef ref;
    ref.table = t.name;
    for (const char* c : t.columns) {
      std::string name = std::string(c) + "_q" + std::to_string(i);
      ref.columns.push_back(name);
      all_cols.push_back(std::move(name));
    }
    q.from.push_back(std::move(ref));
  }
  auto random_col = [&]() {
    return all_cols[Uniform(0, static_cast<int>(all_cols.size()) - 1)];
  };
  auto random_op = [&]() {
    if (config.equality_only) return CmpOp::kEq;
    static const CmpOp kOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                 CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
    return kOps[Uniform(0, 5)];
  };

  // WHERE.
  int num_preds = Uniform(0, config.max_predicates);
  for (int i = 0; i < num_preds; ++i) {
    if (Chance(0.5)) {
      q.where.push_back(Predicate{Operand::Column(random_col()), random_op(),
                                  Operand::Column(random_col())});
    } else {
      q.where.push_back(
          Predicate{Operand::Column(random_col()), random_op(),
                    Operand::Constant(Value::Int64(
                        Uniform(0, config.constant_domain - 1)))});
    }
  }

  // SELECT / GROUPBY / HAVING.
  if (config.query_aggregation) {
    int num_groups = Uniform(1, std::min<int>(3, static_cast<int>(all_cols.size())));
    std::set<std::string> groups;
    while (static_cast<int>(groups.size()) < num_groups) {
      groups.insert(random_col());
    }
    int alias_id = 0;
    for (const std::string& g : groups) {
      q.group_by.push_back(g);
      q.select.push_back(SelectItem::MakeColumn(g));
    }
    int num_aggs = Uniform(1, 2);
    for (int i = 0; i < num_aggs; ++i) {
      AggFn fn = kAggFns[Uniform(0, static_cast<int>(kAggFns.size()) - 1)];
      q.select.push_back(SelectItem::MakeAggregate(
          fn, random_col(), "agg" + std::to_string(alias_id++)));
    }
    if (config.allow_having && Chance(0.5)) {
      AggFn fn = kAggFns[Uniform(0, static_cast<int>(kAggFns.size()) - 1)];
      q.having.push_back(
          Predicate{Operand::Aggregate(fn, random_col()), random_op(),
                    Operand::Constant(Value::Int64(
                        Uniform(0, config.constant_domain - 1)))});
    }
  } else {
    std::set<std::string> selected;
    int num_sel = Uniform(1, std::min<int>(4, static_cast<int>(all_cols.size())));
    while (static_cast<int>(selected.size()) < num_sel) {
      selected.insert(random_col());
    }
    for (const std::string& c : selected) {
      q.select.push_back(SelectItem::MakeColumn(c));
    }
  }
  return q;
}

ViewDef RandomWorkloadGen::DeriveView(const Query& query,
                                      const RandomPairConfig& config,
                                      int view_id) {
  // Choose a non-empty subset of the query's occurrences.
  std::vector<int> chosen;
  for (size_t i = 0; i < query.from.size(); ++i) {
    if (Chance(0.7)) chosen.push_back(static_cast<int>(i));
  }
  if (chosen.empty()) chosen.push_back(0);

  Query v;
  // View columns mirror the chosen occurrences, renamed into the view's own
  // namespace; `to_view` maps query column -> view column.
  std::map<std::string, std::string> to_view;
  std::vector<std::string> view_cols;
  for (size_t vi = 0; vi < chosen.size(); ++vi) {
    const TableRef& q_ref = query.from[chosen[vi]];
    TableRef ref;
    ref.table = q_ref.table;
    for (const std::string& qc : q_ref.columns) {
      std::string vc = qc + "_v" + std::to_string(vi);
      to_view[qc] = vc;
      ref.columns.push_back(vc);
      view_cols.push_back(vc);
    }
    v.from.push_back(std::move(ref));
  }

  auto covered = [&to_view](const Predicate& p) {
    for (const std::string& c : p.ReferencedColumns()) {
      if (to_view.count(c) == 0) return false;
    }
    return true;
  };
  auto translate = [&to_view](Predicate p) {
    for (Operand* o : {&p.lhs, &p.rhs}) {
      if (!o->is_constant()) o->column = to_view.at(o->column);
    }
    return p;
  };

  // Conditions: most of the query's own (covered) conditions, occasionally
  // dropped (weaker view: still usable) or a noise condition added
  // (stronger view: usually unusable).
  for (const Predicate& p : query.where) {
    if (p.IsScalar() && covered(p) && Chance(0.8)) {
      v.where.push_back(translate(p));
    }
  }
  if (Chance(0.25)) {
    const std::string& col =
        view_cols[Uniform(0, static_cast<int>(view_cols.size()) - 1)];
    v.where.push_back(
        Predicate{Operand::Column(col),
                  config.equality_only ? CmpOp::kEq : CmpOp::kLe,
                  Operand::Constant(
                      Value::Int64(Uniform(0, config.constant_domain - 1)))});
  }

  // The columns the query needs from the chosen occurrences; the SELECT
  // clause is biased towards covering them.
  std::set<std::string> needed;
  for (const SelectItem& s : query.select) {
    for (const std::string& c : s.ReferencedColumns()) {
      if (to_view.count(c) > 0) needed.insert(to_view.at(c));
    }
  }
  for (const std::string& g : query.group_by) {
    if (to_view.count(g) > 0) needed.insert(to_view.at(g));
  }
  for (const Predicate& p : query.where) {
    for (const std::string& c : p.ReferencedColumns()) {
      if (to_view.count(c) > 0 && Chance(0.5)) needed.insert(to_view.at(c));
    }
  }

  std::set<std::string> selected;
  for (const std::string& c : needed) {
    if (Chance(0.85)) selected.insert(c);
  }
  for (const std::string& c : view_cols) {
    if (Chance(0.25)) selected.insert(c);
  }
  if (selected.empty()) selected.insert(view_cols[0]);

  if (config.view_aggregation) {
    // Selected columns become grouping columns; add aggregates, with a
    // COUNT most of the time (enabling multiplicity recovery).
    int alias_id = 0;
    for (const std::string& c : selected) {
      v.group_by.push_back(c);
      v.select.push_back(SelectItem::MakeColumn(c));
    }
    int num_aggs = Uniform(1, 2);
    for (int i = 0; i < num_aggs; ++i) {
      AggFn fn = kAggFns[Uniform(0, static_cast<int>(kAggFns.size()) - 1)];
      const std::string& c =
          view_cols[Uniform(0, static_cast<int>(view_cols.size()) - 1)];
      v.select.push_back(SelectItem::MakeAggregate(
          fn, c, "vagg" + std::to_string(alias_id++)));
    }
    if (Chance(0.8)) {
      v.select.push_back(SelectItem::MakeAggregate(
          AggFn::kCount, view_cols[0], "vcount"));
    }
  } else {
    for (const std::string& c : selected) {
      v.select.push_back(SelectItem::MakeColumn(c));
    }
  }

  return ViewDef{"V" + std::to_string(view_id), std::move(v)};
}

QueryViewPair RandomWorkloadGen::NextPair(const RandomPairConfig& config) {
  // Retry until both halves validate (rarely needed).
  for (int attempt = 0; attempt < 100; ++attempt) {
    QueryViewPair pair;
    pair.query = RandomQuery(config);
    if (!ValidateQuery(pair.query).ok()) continue;
    pair.view = DeriveView(pair.query, config, ++pair_count_);
    if (!ValidateQuery(pair.view.query).ok()) continue;
    return pair;
  }
  std::fprintf(stderr, "RandomWorkloadGen: failed to generate a valid pair\n");
  std::abort();
}

}  // namespace aqv
