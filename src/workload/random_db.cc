#include "workload/random_db.h"

namespace aqv {

Table MakeRandomTable(const TableDef& def, int rows, int domain,
                      std::mt19937_64* rng) {
  std::uniform_int_distribution<int64_t> dist(0, domain - 1);
  Table t(def.columns());
  for (int r = 0; r < rows; ++r) {
    Row row;
    row.reserve(def.columns().size());
    for (int c = 0; c < def.num_columns(); ++c) {
      row.push_back(Value::Int64(dist(*rng)));
    }
    t.AddRowOrDie(std::move(row));
  }
  return t;
}

Table MakeRandomTable(const TableDef& def, int rows, int domain,
                      uint64_t seed) {
  std::mt19937_64 rng(seed);
  return MakeRandomTable(def, rows, domain, &rng);
}

Database MakeRandomDatabase(const Catalog& catalog, int rows_per_table,
                            int domain, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Database db;
  for (const std::string& name : catalog.TableNames()) {
    const TableDef* def = *catalog.GetTable(name);
    db.Put(name, MakeRandomTable(*def, rows_per_table, domain, &rng));
  }
  return db;
}

}  // namespace aqv
