#ifndef AQV_WORKLOAD_RANDOM_QUERY_H_
#define AQV_WORKLOAD_RANDOM_QUERY_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/table.h"
#include "ir/query.h"

namespace aqv {

/// Knobs for generated query/view pairs.
struct RandomPairConfig {
  int max_query_tables = 3;
  int max_predicates = 3;
  int constant_domain = 4;       // constants drawn from [0, domain)
  bool query_aggregation = true;  // grouped query with aggregates
  bool view_aggregation = false;  // grouped view with aggregates
  bool allow_having = false;
  bool equality_only = true;  // restrict predicates to '=' (Theorem 3.1/3.2)
};

/// A generated query plus a candidate view over the same base tables. The
/// view is derived from the query by dropping tables/conditions/columns and
/// optionally adding noise, so that a sizeable fraction of pairs is usable
/// (exercising the rewriting) and the rest exercises the refusal paths.
struct QueryViewPair {
  Query query;
  ViewDef view;
};

/// Deterministic generator of random schemas-fixed workloads for property
/// tests: the soundness tests rewrite each generated pair and check
/// multiset-equivalence of the two evaluations over random databases.
class RandomWorkloadGen {
 public:
  explicit RandomWorkloadGen(uint64_t seed);

  /// The fixed schema: R1(A,B,C,D), R2(E,F), R3(G,H), no keys.
  const Catalog& catalog() const { return catalog_; }

  /// Generates the next query/view pair under `config`.
  QueryViewPair NextPair(const RandomPairConfig& config);

  /// Random contents for the fixed schema, drawn from the generator's own
  /// stream (advances internal state; successive calls differ).
  Database NextDatabase(int rows_per_table, int domain);

  /// Random contents for the fixed schema from an explicit `seed`,
  /// independent of the generator's internal state. Use this when a bench
  /// or service load test must be reproducible from its parameters alone.
  Database NextDatabase(int rows_per_table, int domain, uint64_t seed) const;

  /// Restarts the generator's internal stream at `seed`, as if freshly
  /// constructed (pair numbering continues, so view names stay unique).
  void Reseed(uint64_t seed) { rng_.seed(seed); }

 private:
  int Uniform(int lo, int hi);  // inclusive bounds
  bool Chance(double p);

  Query RandomQuery(const RandomPairConfig& config);
  ViewDef DeriveView(const Query& query, const RandomPairConfig& config,
                     int view_id);

  Catalog catalog_;
  std::mt19937_64 rng_;
  int pair_count_ = 0;
};

}  // namespace aqv

#endif  // AQV_WORKLOAD_RANDOM_QUERY_H_
