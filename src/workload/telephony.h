#ifndef AQV_WORKLOAD_TELEPHONY_H_
#define AQV_WORKLOAD_TELEPHONY_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "exec/table.h"
#include "ir/query.h"
#include "ir/views.h"

namespace aqv {

/// Parameters of the synthetic telephony warehouse of Example 1.1.
/// Cardinalities default to the ratios the paper's speedup claim rests on:
/// calls vastly outnumber plans, and the monthly summary view has at most
/// `num_plans * 12 * num_years` rows regardless of call volume.
struct TelephonyParams {
  int num_plans = 20;
  int num_customers = 1000;
  int num_calls = 100000;
  int first_year = 1994;
  int num_years = 3;
  double max_charge = 10.0;
  /// HAVING threshold of the query ("plans that earned less than ...").
  double earnings_threshold = 1e6;
  uint64_t seed = 42;
};

/// The Example 1.1 scenario, fully assembled: catalog (with the paper's
/// keys), generated base tables, the monthly-earnings summary view V1
/// (registered in `views`), and the query Q ("plans that earned less than
/// the threshold in 1995").
struct TelephonyWorkload {
  Catalog catalog;
  Database db;
  ViewRegistry views;
  Query query;         // Q of Example 1.1
  std::string summary_view = "V1";
};

TelephonyWorkload MakeTelephonyWorkload(const TelephonyParams& params);

}  // namespace aqv

#endif  // AQV_WORKLOAD_TELEPHONY_H_
