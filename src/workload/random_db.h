#ifndef AQV_WORKLOAD_RANDOM_DB_H_
#define AQV_WORKLOAD_RANDOM_DB_H_

#include <cstdint>
#include <random>

#include "catalog/catalog.h"
#include "exec/table.h"

namespace aqv {

/// Fills one table with `rows` random rows whose integer values are drawn
/// uniformly from [0, domain). Small domains force duplicates and joins with
/// matches — exactly the regime where multiset semantics bites.
Table MakeRandomTable(const TableDef& def, int rows, int domain,
                      std::mt19937_64* rng);

/// Same, from an explicit seed rather than a caller-owned generator. Every
/// randomized bench/load-generator entry point takes its seed this way so a
/// run is reproducible from its reported parameters alone.
Table MakeRandomTable(const TableDef& def, int rows, int domain,
                      uint64_t seed);

/// Random contents for every table of `catalog`.
Database MakeRandomDatabase(const Catalog& catalog, int rows_per_table,
                            int domain, uint64_t seed);

}  // namespace aqv

#endif  // AQV_WORKLOAD_RANDOM_DB_H_
