#include "base/value.h"

#include <cmath>
#include <cstdio>

namespace aqv {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "unknown";
}

double Value::AsDouble() const {
  if (type() == ValueType::kInt64) return static_cast<double>(int64());
  return dbl();
}

namespace {

// Orders types into comparison families: NULL(0) < numeric(1) < string(2).
int Family(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int fa = Family(type());
  int fb = Family(other.type());
  if (fa != fb) return fa < fb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Compare numerically; exact int64/int64 path avoids double rounding.
      if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
        int64_t a = int64(), b = other.int64();
        if (a != b) return a < b ? -1 : 1;
        return 0;
      }
      // Numerically equal INT64 and DOUBLE values compare equal, matching
      // SQL equality, hashing, grouping and DISTINCT.
      return CompareDoubles(AsDouble(), other.AsDouble());
    }
    case ValueType::kString:
      return str().compare(other.str());
  }
  return 0;
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_numeric() && other.is_numeric()) return AsDouble() == other.AsDouble();
  if (type() != other.type()) return false;
  return Compare(other) == 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      return std::hash<int64_t>{}(int64());
    case ValueType::kDouble: {
      // Hash doubles holding integral values like the equal int64 would, so
      // grouping keys that compare equal hash equal.
      double d = dbl();
      if (std::nearbyint(d) == d && std::abs(d) < 9.0e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(str());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(int64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", dbl());
      return buf;
    }
    case ValueType::kString:
      return "'" + str() + "'";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0x345678;
  for (const Value& v : row) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  return CompareRows(a, b) == 0;
}

}  // namespace aqv
