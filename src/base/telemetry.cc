#include "base/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace aqv {

namespace {

uint64_t SteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int64_t UnixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Metric names may carry Prometheus label blocks (quotes, backslashes),
/// so JSON keys must be escaped like any other string.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

uint64_t TelemetryWindow::CounterDelta(const std::string& name) const {
  auto it = std::lower_bound(
      counter_deltas.begin(), counter_deltas.end(), name,
      [](const auto& p, const std::string& n) { return p.first < n; });
  return it != counter_deltas.end() && it->first == name ? it->second : 0;
}

int64_t TelemetryWindow::GaugeValue(const std::string& name) const {
  auto it = std::lower_bound(
      gauge_values.begin(), gauge_values.end(), name,
      [](const auto& p, const std::string& n) { return p.first < n; });
  return it != gauge_values.end() && it->first == name ? it->second : 0;
}

const TelemetryWindow::Hist* TelemetryWindow::Histogram(
    const std::string& name) const {
  auto it = std::lower_bound(
      histograms.begin(), histograms.end(), name,
      [](const Hist& h, const std::string& n) { return h.name < n; });
  return it != histograms.end() && it->name == name ? &*it : nullptr;
}

TelemetryRecorder::TelemetryRecorder(MetricsRegistry* registry,
                                     TelemetryOptions options)
    : registry_(registry), options_(options) {
  ring_.resize(options_.capacity == 0 ? 1 : options_.capacity);
  // Prime the delta baseline so the first window reports only activity
  // after recorder construction, not lifetime-cumulative values.
  MetricsSnapshot snap = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, v] : snap.counters) last_counters_[name] = v;
  for (const auto& h : snap.histograms) {
    last_hists_[h.name] = {h.count, h.sum_micros};
  }
  window_start_micros_ = SteadyMicros();
}

TelemetryRecorder::~TelemetryRecorder() { Stop(); }

void TelemetryRecorder::Start() {
  if (options_.interval_micros == 0 ||
      running_.load(std::memory_order_relaxed)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void TelemetryRecorder::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  running_.store(false, std::memory_order_relaxed);
}

void TelemetryRecorder::SamplerLoop() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::microseconds(options_.interval_micros),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

TelemetryWindowPtr TelemetryRecorder::SampleNow() {
  // Snapshot outside mu_ would race concurrent SampleNow callers on the
  // baseline maps; the registry lock nests inside mu_ and nothing takes
  // them in the other order.
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap = registry_->Snapshot();

  auto w = std::make_shared<TelemetryWindow>();
  w->seq = next_seq_;
  w->start_micros = window_start_micros_;
  w->end_micros = SteadyMicros();
  if (w->end_micros <= w->start_micros) w->end_micros = w->start_micros + 1;
  w->unix_millis = UnixMillis();

  w->counter_deltas.reserve(snap.counters.size());
  for (const auto& [name, v] : snap.counters) {
    uint64_t& last = last_counters_[name];
    uint64_t delta = v >= last ? v - last : v;  // reset-aware
    last = v;
    if (delta != 0) w->counter_deltas.emplace_back(name, delta);
  }
  w->gauge_values.assign(snap.gauges.begin(), snap.gauges.end());
  w->histograms.reserve(snap.histograms.size());
  for (const auto& h : snap.histograms) {
    auto& last = last_hists_[h.name];
    TelemetryWindow::Hist out;
    out.name = h.name;
    out.delta_count = h.count >= last.first ? h.count - last.first : h.count;
    out.delta_sum_micros =
        h.sum_micros >= last.second ? h.sum_micros - last.second : h.sum_micros;
    out.max_micros = h.max_micros;
    last = {h.count, h.sum_micros};
    if (out.delta_count != 0) w->histograms.push_back(std::move(out));
  }

  size_t slot = next_seq_ % ring_.size();
  if (ring_[slot] != nullptr) {
    windows_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_[slot] = w;
  ++next_seq_;
  window_start_micros_ = w->end_micros;
  windows_sampled_.fetch_add(1, std::memory_order_relaxed);
  return w;
}

std::vector<TelemetryWindowPtr> TelemetryRecorder::History(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t available = next_seq_ < ring_.size()
                         ? static_cast<size_t>(next_seq_)
                         : ring_.size();
  size_t take = n == 0 || n > available ? available : n;
  std::vector<TelemetryWindowPtr> out;
  out.reserve(take);
  for (uint64_t seq = next_seq_ - take; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % ring_.size()]);
  }
  return out;
}

std::string TelemetryRecorder::HistoryJson(size_t n) const {
  std::vector<TelemetryWindowPtr> windows = History(n);
  std::string out = "[";
  char buf[128];
  bool first_window = true;
  for (const auto& w : windows) {
    if (!first_window) out += ",";
    first_window = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"seq\":%llu,\"unix_millis\":%lld,\"duration_micros\":%llu",
                  static_cast<unsigned long long>(w->seq),
                  static_cast<long long>(w->unix_millis),
                  static_cast<unsigned long long>(w->duration_micros()));
    out += buf;
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, delta] : w->counter_deltas) {
      if (!first) out += ",";
      first = false;
      AppendJsonString(&out, name);
      std::snprintf(buf, sizeof(buf), ":%llu",
                    static_cast<unsigned long long>(delta));
      out += buf;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : w->gauge_values) {
      if (!first) out += ",";
      first = false;
      AppendJsonString(&out, name);
      std::snprintf(buf, sizeof(buf), ":%lld", static_cast<long long>(v));
      out += buf;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& h : w->histograms) {
      if (!first) out += ",";
      first = false;
      AppendJsonString(&out, h.name);
      std::snprintf(buf, sizeof(buf),
                    ":{\"count\":%llu,\"sum_micros\":%llu,\"max_micros\":%llu}",
                    static_cast<unsigned long long>(h.delta_count),
                    static_cast<unsigned long long>(h.delta_sum_micros),
                    static_cast<unsigned long long>(h.max_micros));
      out += buf;
    }
    out += "}}";
  }
  out += "]";
  return out;
}

}  // namespace aqv
