#include "base/failpoint.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace aqv {

namespace {

constexpr uint64_t kDefaultSeed = 0x5eedf41175ULL;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t EnvSeed() {
  const char* env = std::getenv("AQV_TEST_SEED");
  if (env == nullptr || *env == '\0') return kDefaultSeed;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

/// Parses "action" or "action(a[,b[,c]])" into the action name and up to
/// three non-negative integer args. Whitespace is not allowed.
bool SplitSpec(const std::string& spec, std::string* action,
               std::vector<uint64_t>* args) {
  size_t lparen = spec.find('(');
  if (lparen == std::string::npos) {
    *action = spec;
    return !action->empty();
  }
  if (spec.back() != ')') return false;
  *action = spec.substr(0, lparen);
  std::string inner = spec.substr(lparen + 1, spec.size() - lparen - 2);
  if (action->empty() || inner.empty()) return false;
  size_t pos = 0;
  while (pos <= inner.size()) {
    size_t comma = inner.find(',', pos);
    std::string tok = inner.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (tok.empty()) return false;
    for (char c : tok) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    }
    args->push_back(std::strtoull(tok.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return args->size() <= 3;
}

}  // namespace

FailpointRegistry::FailpointRegistry() : seed_(EnvSeed()) {
  // AQV_FAILPOINTS="name=spec;name=spec": arm from the environment so a
  // chaos CI job (or a crashed-run repro) needs no code changes. Malformed
  // entries are skipped — env-driven arming must never take the process
  // down before main().
  const char* env = std::getenv("AQV_FAILPOINTS");
  if (env == nullptr) return;
  std::string all(env);
  size_t pos = 0;
  while (pos < all.size()) {
    size_t semi = all.find(';', pos);
    std::string entry = all.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    size_t eq = entry.find('=');
    if (eq != std::string::npos && eq > 0) {
      Set(entry.substr(0, eq), entry.substr(eq + 1));
    }
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

uint64_t FailpointRegistry::SeedFor(uint64_t base_seed,
                                    const std::string& name) {
  // Distinct stream per site: arming/removing one failpoint never perturbs
  // another's draw sequence, so chaos schedules stay seed-stable.
  return base_seed ^ HashName(name);
}

Status FailpointRegistry::Set(const std::string& name,
                              const std::string& spec) {
  if (name.empty()) {
    return Status::InvalidArgument("failpoint name must not be empty");
  }
  std::string action;
  std::vector<uint64_t> args;
  if (!SplitSpec(spec, &action, &args)) {
    return Status::InvalidArgument("malformed failpoint spec '" + spec +
                                   "' (see failpoint.h for the grammar)");
  }

  Failpoint fp;
  fp.spec = spec;
  if (action == "off") {
    if (!args.empty()) {
      return Status::InvalidArgument("'off' takes no arguments");
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (failpoints_.erase(name) > 0) {
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    return Status::OK();
  }
  if (action == "error") {
    fp.action = Action::kError;
    fp.probability_pct =
        args.size() >= 1 ? static_cast<uint32_t>(args[0]) : 100;
    fp.max_fires = args.size() >= 2 ? args[1] : 0;
    if (args.size() > 2 || fp.probability_pct > 100) {
      return Status::InvalidArgument("usage: error[(percent[,max_fires])]");
    }
  } else if (action == "delay") {
    fp.action = Action::kDelay;
    if (args.empty()) {
      return Status::InvalidArgument("usage: delay(micros[,percent[,max_fires]])");
    }
    fp.delay_micros = args[0];
    fp.probability_pct =
        args.size() >= 2 ? static_cast<uint32_t>(args[1]) : 100;
    fp.max_fires = args.size() >= 3 ? args[2] : 0;
    if (fp.probability_pct > 100) {
      return Status::InvalidArgument("delay percent must be 0..100");
    }
  } else {
    return Status::InvalidArgument("unknown failpoint action '" + action +
                                   "' (expected off, error or delay)");
  }

  fp.rng_state = SeedFor(seed_, name);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = failpoints_.insert_or_assign(name, std::move(fp));
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void FailpointRegistry::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(failpoints_.size(), std::memory_order_relaxed);
  failpoints_.clear();
}

void FailpointRegistry::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  for (auto& [name, fp] : failpoints_) {
    fp.rng_state = SeedFor(seed, name);
    fp.evaluations = 0;
    fp.fires = 0;
  }
}

std::vector<FailpointRegistry::Info> FailpointRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Info> out;
  out.reserve(failpoints_.size());
  for (const auto& [name, fp] : failpoints_) {
    out.push_back(Info{name, fp.spec, fp.evaluations, fp.fires});
  }
  return out;
}

Status FailpointRegistry::Evaluate(const char* name) {
  uint64_t delay_micros = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = failpoints_.find(name);
    if (it == failpoints_.end()) return Status::OK();
    Failpoint& fp = it->second;
    ++fp.evaluations;
    if (fp.max_fires > 0 && fp.fires >= fp.max_fires) return Status::OK();
    if (fp.probability_pct < 100 &&
        SplitMix64(&fp.rng_state) % 100 >= fp.probability_pct) {
      return Status::OK();
    }
    ++fp.fires;
    if (fp.action == Action::kError) {
      return Status::Unavailable("injected failpoint '" + std::string(name) +
                                 "' (" + fp.spec + ")");
    }
    delay_micros = fp.delay_micros;
  }
  // Sleep outside the lock so a delay failpoint never serializes other
  // sites (or FAILPOINT statements) behind it.
  if (delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
  }
  return Status::OK();
}

}  // namespace aqv
