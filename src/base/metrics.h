#ifndef AQV_BASE_METRICS_H_
#define AQV_BASE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace aqv {

/// A monotonically increasing event counter safe for concurrent use.
/// Increments are relaxed: counters order nothing, they only count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time level (cache occupancy, configured capacity, queue
/// depth). Unlike a Counter it may go down; updates are relaxed atomics.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A lock-free latency histogram over microseconds with power-of-two
/// buckets: bucket i counts samples in [2^(i-1), 2^i), bucket 0 counts
/// sub-microsecond samples. Percentiles are recovered by linear
/// interpolation within the bucket, so they are approximate (at worst a
/// factor-of-two bucket wide) but never require locking on the record path.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(uint64_t micros);

  uint64_t count() const;
  uint64_t sum_micros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }
  double mean_micros() const;

  /// Relaxed snapshot of every bucket count, index-aligned with
  /// BucketUpperMicros. Used by the Prometheus exposition and the
  /// telemetry sampler; not a consistent cut (buckets may be mid-update)
  /// but each bucket value is monotone, so cumulative sums stay monotone.
  std::vector<uint64_t> BucketCounts() const;

  /// Inclusive upper bound in microseconds of bucket `i`: 0 for bucket 0,
  /// else 2^i - 1 (samples are integer micros, so this is exact). The last
  /// bucket absorbs everything larger and has no finite bound.
  static uint64_t BucketUpperMicros(int i);

  /// Largest sample ever recorded (exact, not bucket-rounded) — the tail
  /// value that pages you, reported alongside the approximate percentiles.
  uint64_t max_micros() const {
    return max_micros_.load(std::memory_order_relaxed);
  }

  /// Approximate value at quantile `q` in (0, 1], e.g. 0.5 for p50. Returns
  /// 0 when the histogram is empty.
  double PercentileMicros(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

/// Registry-internal metric name for one series of a labeled family, with
/// the label value escaped per the Prometheus text format (backslash,
/// double-quote, and newline). Example:
///   PromLabeledName("service.errors_total", "code", "bad\"value")
///     -> service.errors_total{code="bad\"value"}
/// Build labeled names through this so PromText can emit the stored label
/// block verbatim and still be parseable.
std::string PromLabeledName(const std::string& family, const std::string& key,
                            const std::string& value);

/// Point-in-time copy of every registered metric, taken under the registry
/// mutex with relaxed value reads. This is what the telemetry sampler
/// diffs between windows.
struct MetricsSnapshot {
  struct Hist {
    std::string name;
    uint64_t count = 0;
    uint64_t sum_micros = 0;
    uint64_t max_micros = 0;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, int64_t>> gauges;     // name-sorted
  std::vector<Hist> histograms;                            // name-sorted
};

/// Name -> metric registry. Metrics are created on first use and live as
/// long as the registry, so callers may cache the returned references.
/// Creation takes a mutex; the returned Counter/LatencyHistogram objects are
/// themselves lock-free.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  LatencyHistogram& GetHistogram(const std::string& name);

  /// Attach Prometheus `# HELP` text to a metric family (the name before
  /// any label block). Families without registered help export their own
  /// dotted name as help text.
  void SetHelp(const std::string& family, const std::string& help);

  /// Multi-line "name value" / "name count=.. mean=.. p50=.. p99=.. max=.."
  /// report, sorted by metric name.
  std::string Report() const;

  /// Prometheus text exposition format: `# HELP` + `# TYPE` per metric
  /// family; histograms export natively as cumulative `_bucket{le="..."}`
  /// series over the power-of-two bucket bounds plus `_sum`/`_count`.
  /// Names are prefixed "aqv_" and sanitized to [a-z0-9_], except that a
  /// trailing label block — as in `service.errors_total{code="x"}` — is
  /// exported verbatim (escape values via PromLabeledName at creation).
  std::string PromText() const;

  /// (name, value) of every counter whose name starts with `prefix`,
  /// sorted by name. Lets embedders enumerate dynamically labeled families
  /// (per-status-code error counters) without parsing the Prom text.
  std::vector<std::pair<std::string, uint64_t>> CounterValues(
      const std::string& prefix) const;

  /// Snapshot of all registered metrics (see MetricsSnapshot).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (the metrics stay registered).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace aqv

#endif  // AQV_BASE_METRICS_H_
