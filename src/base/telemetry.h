#ifndef AQV_BASE_TELEMETRY_H_
#define AQV_BASE_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/metrics.h"

namespace aqv {

/// One sampling window: the change in every registered metric between two
/// consecutive sampler ticks. Counters and histogram count/sum are
/// delta-encoded (what happened *during* this window); gauges and histogram
/// max are point-in-time levels. Windows are immutable once published.
struct TelemetryWindow {
  uint64_t seq = 0;          // monotone window number since recorder start
  int64_t unix_millis = 0;   // wall-clock stamp at window close
  uint64_t start_micros = 0;  // window open, recorder steady clock
  uint64_t end_micros = 0;    // window close, recorder steady clock

  std::vector<std::pair<std::string, uint64_t>> counter_deltas;  // sorted
  std::vector<std::pair<std::string, int64_t>> gauge_values;     // sorted

  struct Hist {
    std::string name;
    uint64_t delta_count = 0;       // samples recorded during the window
    uint64_t delta_sum_micros = 0;  // their summed latency
    uint64_t max_micros = 0;        // lifetime max as of window close
  };
  std::vector<Hist> histograms;  // sorted

  uint64_t duration_micros() const { return end_micros - start_micros; }

  /// Delta of the named counter in this window (0 if absent).
  uint64_t CounterDelta(const std::string& name) const;
  /// Level of the named gauge at window close (0 if absent).
  int64_t GaugeValue(const std::string& name) const;
  /// Histogram deltas for `name` (nullptr if absent).
  const Hist* Histogram(const std::string& name) const;
};

using TelemetryWindowPtr = std::shared_ptr<const TelemetryWindow>;

struct TelemetryOptions {
  /// Sampler thread tick interval. 0 disables the background thread;
  /// windows can still be cut on demand via SampleNow() (MONITOR does).
  uint64_t interval_micros = 250'000;
  /// Ring capacity in windows; the oldest window is dropped (and counted)
  /// once full. 240 windows at 250 ms is one minute of history.
  size_t capacity = 240;
};

/// Time-series recorder over a MetricsRegistry: a background sampler cuts a
/// delta-encoded TelemetryWindow per tick into a bounded ring, turning
/// lifetime-cumulative counters into queryable curves (throughput dips,
/// cache-hit drift, fsync spikes).
///
/// Concurrency: the metric *record* hot path (query threads bumping relaxed
/// atomics) never touches the recorder and stays lock-free. Window
/// publication swaps shared_ptrs in the ring under a small mutex held only
/// by the sampler tick and History() readers — both rare and O(capacity) —
/// never by statement execution. Readers receive immutable snapshots, so a
/// window stays valid after eviction for as long as a reader holds it.
class TelemetryRecorder {
 public:
  TelemetryRecorder(MetricsRegistry* registry, TelemetryOptions options);
  ~TelemetryRecorder();

  TelemetryRecorder(const TelemetryRecorder&) = delete;
  TelemetryRecorder& operator=(const TelemetryRecorder&) = delete;

  /// Starts the background sampler (no-op when interval is 0 or already
  /// running). The first window opens at the time of this call.
  void Start();
  /// Stops and joins the sampler thread. Idempotent; the ring survives.
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Cuts one window right now (also what the sampler thread calls each
  /// tick). Returns the freshly published window.
  TelemetryWindowPtr SampleNow();

  /// The most recent `n` windows, oldest first (all retained windows when
  /// n is 0 or exceeds the ring).
  std::vector<TelemetryWindowPtr> History(size_t n = 0) const;

  /// History as a JSON array (oldest first), the export artifact format.
  std::string HistoryJson(size_t n = 0) const;

  uint64_t windows_sampled() const {
    return windows_sampled_.load(std::memory_order_relaxed);
  }
  uint64_t windows_dropped() const {
    return windows_dropped_.load(std::memory_order_relaxed);
  }
  const TelemetryOptions& options() const { return options_; }

 private:
  void SamplerLoop();

  MetricsRegistry* const registry_;
  const TelemetryOptions options_;

  mutable std::mutex mu_;  // ring + delta baseline; see class comment
  std::vector<TelemetryWindowPtr> ring_;  // ring_[seq % capacity]
  uint64_t next_seq_ = 0;
  uint64_t window_start_micros_ = 0;  // open edge of the current window
  // Cumulative values at the previous tick, for delta encoding.
  std::map<std::string, uint64_t> last_counters_;
  std::map<std::string, std::pair<uint64_t, uint64_t>> last_hists_;

  std::atomic<uint64_t> windows_sampled_{0};
  std::atomic<uint64_t> windows_dropped_{0};

  std::mutex thread_mu_;  // guards cv_ wakeups only
  std::condition_variable cv_;
  std::thread sampler_;
  std::atomic<bool> running_{false};
  bool stop_requested_ = false;  // under thread_mu_
};

}  // namespace aqv

#endif  // AQV_BASE_TELEMETRY_H_
