#ifndef AQV_BASE_QUERY_STATS_H_
#define AQV_BASE_QUERY_STATS_H_

#include <cstdint>
#include <string>

namespace aqv {

/// Per-statement cost attribution. One QueryStats rides through a single
/// statement's lifetime — hung on the ExecContext for the read path, passed
/// into the write path explicitly — and each stage adds the time and I/O it
/// consumed. The service reports it in EXPLAIN ANALYZE, attaches it to
/// SLOWLOG entries, and folds it into per-fingerprint aggregates for the
/// view advisor.
///
/// Phase times are disjoint wall-clock intervals, so their sum approximates
/// the statement's total wall time; the gap (total minus phase sum) is
/// dispatch overhead outside any timed phase and should stay within a few
/// percent (asserted by observability_test and measured in E19).
struct QueryStats {
  // --- disjoint phase times, microseconds ---
  uint64_t parse_micros = 0;     // text -> IR
  uint64_t latch_micros = 0;     // waiting on the table-stripe latches
  uint64_t optimize_micros = 0;  // rewrite search + plan-cache probe/fill
  uint64_t exec_micros = 0;      // evaluator time over the chosen plan
  uint64_t maintain_micros = 0;  // incremental view maintenance (writes)
  uint64_t wal_commit_micros = 0;  // WAL serialize + append + fsync (writes)
  uint64_t total_micros = 0;       // wall clock for the whole statement

  // --- plan provenance ---
  uint64_t fingerprint = 0;  // canonical IR fingerprint (0 for writes)
  uint64_t epoch = 0;        // database epoch the statement ran against
  bool cache_hit = false;    // plan served from the plan cache
  bool degraded = false;     // fell back to the unrewritten plan

  // --- work counters ---
  uint64_t rows_processed = 0;      // operator row charges (ExecContext)
  uint64_t buffer_pool_hits = 0;    // storage buffer-pool hits
  uint64_t buffer_pool_misses = 0;  // storage buffer-pool misses
  uint64_t pages_read = 0;          // pages fetched from disk
  uint64_t pages_written = 0;       // pages flushed to disk
  uint64_t wal_bytes = 0;           // WAL bytes appended for this statement

  /// Sum of the disjoint phases — compare against total_micros to see how
  /// much wall time the attribution accounts for.
  uint64_t PhaseSumMicros() const {
    return parse_micros + latch_micros + optimize_micros + exec_micros +
           maintain_micros + wal_commit_micros;
  }

  void Add(const QueryStats& o) {
    parse_micros += o.parse_micros;
    latch_micros += o.latch_micros;
    optimize_micros += o.optimize_micros;
    exec_micros += o.exec_micros;
    maintain_micros += o.maintain_micros;
    wal_commit_micros += o.wal_commit_micros;
    total_micros += o.total_micros;
    rows_processed += o.rows_processed;
    buffer_pool_hits += o.buffer_pool_hits;
    buffer_pool_misses += o.buffer_pool_misses;
    pages_read += o.pages_read;
    pages_written += o.pages_written;
    wal_bytes += o.wal_bytes;
  }
};

/// Running per-fingerprint aggregate of QueryStats, kept by the service so
/// the advisor can rank statements by where time actually goes rather than
/// by slow-log anecdotes.
struct FingerprintProfile {
  uint64_t fingerprint = 0;
  std::string example;  // one representative statement text
  uint64_t count = 0;
  uint64_t cache_hits = 0;
  QueryStats totals;  // summed attribution across executions
};

}  // namespace aqv

#endif  // AQV_BASE_QUERY_STATS_H_
