#include "base/status.h"

namespace aqv {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kUnusable:
      return "unusable";
    case StatusCode::kUnsatisfiable:
      return "unsatisfiable";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace aqv
