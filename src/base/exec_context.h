#ifndef AQV_BASE_EXEC_CONTEXT_H_
#define AQV_BASE_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "base/query_stats.h"
#include "base/status.h"

namespace aqv {

/// Per-statement resource governance: a deadline, a row budget, and a
/// cooperative cancel flag, carried from the service through the optimizer's
/// candidate enumeration down into the evaluator's operator loops.
///
/// Usage contract:
///   - One ExecContext per statement, owned by whoever issued it (the
///     service handler, a test). The statement executes on one thread;
///     only the cancel flag may be flipped from another thread.
///   - Hot loops call TickRows(n) per row processed. The budget check is a
///     plain counter compare; the deadline/cancel check (a clock read and
///     an atomic load) runs only every kCheckStride charged rows, so the
///     per-row cost stays at an increment and a branch.
///   - Once TickRows returns false the loop must stop; status() then holds
///     the violation (kResourceExhausted / kDeadlineExceeded) and every
///     later TickRows keeps returning false. Partial output is discarded
///     by the caller — governance never produces silently truncated rows.
///   - A default-constructed context has no limits: TickRows always
///     returns true and costs one compare more than not having it.
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Deadline/cancel re-check interval, in charged rows.
  static constexpr size_t kCheckStride = 1024;

  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Absolute deadline on the steady clock.
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// Deadline `micros` from now. 0 is a valid (already expired) deadline.
  void set_deadline_after_micros(uint64_t micros) {
    set_deadline(Clock::now() + std::chrono::microseconds(micros));
  }
  /// Budget on rows processed across all operators of the statement
  /// (scans, joins, grouping — the work and intermediate-size proxy).
  /// 0 means unlimited.
  void set_row_budget(size_t rows) { row_budget_ = rows; }
  /// External cancel flag; polled (relaxed) on the same stride as the
  /// deadline. `flag` must outlive the statement.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_ = flag; }

  /// True if any limit is configured (callers may skip plumbing otherwise).
  bool limited() const {
    return has_deadline_ || row_budget_ > 0 || cancel_ != nullptr;
  }

  /// Charges `n` rows and returns true to continue. See class comment.
  bool TickRows(size_t n = 1) {
    if (!status_.ok()) return false;
    rows_charged_ += n;
    if (row_budget_ > 0 && rows_charged_ > row_budget_) {
      status_ = Status::ResourceExhausted(
          "statement exceeded its row budget of " +
          std::to_string(row_budget_) + " rows");
      return false;
    }
    stride_ += n;
    if (stride_ >= kCheckStride) {
      stride_ = 0;
      return CheckNow();
    }
    return true;
  }

  /// Immediate deadline/cancel check (no row charge): true to continue.
  /// Used between pipeline stages and by the rewrite enumeration cutoff.
  bool CheckNow() {
    if (!status_.ok()) return false;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      status_ = Status::DeadlineExceeded("statement cancelled");
      return false;
    }
    if (has_deadline_ && Clock::now() > deadline_) {
      status_ = Status::DeadlineExceeded("statement exceeded its deadline");
      return false;
    }
    return true;
  }

  /// Non-OK once a limit has tripped; the first violation wins.
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  /// Rows charged so far (monotonic across operators).
  size_t rows_charged() const { return rows_charged_; }

  /// Optional per-statement cost attribution sink. The owner (the service
  /// handler) hangs its QueryStats here so stages that only see the
  /// context — the evaluator, the storage commit path — can contribute
  /// phase times and work counters. Must outlive the statement; never
  /// touched by TickRows, so the hot path is unaffected.
  void set_stats(QueryStats* stats) { stats_ = stats; }
  QueryStats* stats() const { return stats_; }

  /// Resets the violation and row accounting but keeps the configured
  /// limits — except that a tripped row budget stays tripped only through
  /// its counter, so a degraded retry gets a fresh budget against the same
  /// absolute deadline.
  void ResetForRetry() {
    status_ = Status::OK();
    rows_charged_ = 0;
    stride_ = 0;
  }

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  size_t row_budget_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;

  size_t rows_charged_ = 0;
  size_t stride_ = 0;
  Status status_;
  QueryStats* stats_ = nullptr;
};

}  // namespace aqv

#endif  // AQV_BASE_EXEC_CONTEXT_H_
