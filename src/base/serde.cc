#include "base/serde.h"

namespace aqv {

void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutDoubleBits(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(out, bits);
}

void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutVarint64(out, s.size());
  out->append(s.data(), s.size());
}

Result<uint32_t> ByteReader::ReadFixed32() {
  if (remaining() < 4) {
    return Status::InvalidArgument("serde: truncated fixed32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadFixed64() {
  if (remaining() < 8) {
    return Status::InvalidArgument("serde: truncated fixed64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> ByteReader::ReadVarint64() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (empty()) return Status::InvalidArgument("serde: truncated varint");
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return Status::InvalidArgument("serde: varint over 64 bits");
}

Result<double> ByteReader::ReadDoubleBits() {
  AQV_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string_view> ByteReader::ReadLengthPrefixed() {
  AQV_ASSIGN_OR_RETURN(uint64_t len, ReadVarint64());
  return ReadBytes(len);
}

Result<std::string_view> ByteReader::ReadBytes(size_t n) {
  if (remaining() < n) {
    return Status::InvalidArgument("serde: truncated byte range (want " +
                                   std::to_string(n) + ", have " +
                                   std::to_string(remaining()) + ")");
  }
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

uint64_t Checksum64(std::string_view data) {
  return Checksum64(data.data(), data.size());
}

uint64_t Checksum64(const char* data, size_t size) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace aqv
