#ifndef AQV_BASE_STRINGS_H_
#define AQV_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace aqv {

/// Joins `parts` with `sep` ("a, b, c").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII-lowercases `s`.
std::string ToLower(std::string_view s);

/// ASCII-uppercases `s`.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace aqv

#endif  // AQV_BASE_STRINGS_H_
