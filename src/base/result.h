#ifndef AQV_BASE_RESULT_H_
#define AQV_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace aqv {

/// Value-or-Status, in the style of arrow::Result<T>. A Result is either OK
/// and holds a T, or holds a non-OK Status. Accessing the value of a failed
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs a failed Result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }
  /// Constructs a successful Result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// failed Status out of the current function.
#define AQV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define AQV_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define AQV_ASSIGN_OR_RETURN_NAME(a, b) AQV_ASSIGN_OR_RETURN_CONCAT(a, b)
#define AQV_ASSIGN_OR_RETURN(lhs, expr) \
  AQV_ASSIGN_OR_RETURN_IMPL(            \
      AQV_ASSIGN_OR_RETURN_NAME(_aqv_result_, __LINE__), lhs, expr)

}  // namespace aqv

#endif  // AQV_BASE_RESULT_H_
