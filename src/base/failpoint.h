#ifndef AQV_BASE_FAILPOINT_H_
#define AQV_BASE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"

namespace aqv {

/// Deterministic fault injection for robustness testing, in the spirit of
/// etcd's gofail / RocksDB's sync points, with the same cost discipline as
/// base/trace.h: when no failpoint is armed, a site costs exactly one
/// relaxed atomic load. Sites are named strings compiled into the code
/// (`AQV_FAILPOINT("exec.operator")`); what each site does is configured at
/// runtime via a spec:
///
///   off              disarm the failpoint
///   error            inject a kUnavailable Status on every evaluation
///   error(P)         inject with probability P percent (0..100)
///   error(P,N)       as error(P), but stop firing after N injections
///   delay(U)         sleep U microseconds on every evaluation
///   delay(U,P)       sleep U microseconds with probability P percent
///   delay(U,P,N)     as delay(U,P), at most N times
///
/// Probabilistic triggers draw from a per-failpoint splitmix64 stream
/// seeded from the registry seed (AQV_TEST_SEED when set, else a fixed
/// default) xor the site-name hash, so a chaos run replays exactly from
/// its seed regardless of which other failpoints are armed.
///
/// Activation paths:
///   - programmatic: FailpointRegistry::Global().Set("name", "error(10)");
///   - environment:  AQV_FAILPOINTS="exec.operator=error(5);parse=delay(100)"
///     parsed on first Global() access (malformed entries are ignored);
///   - service statement: FAILPOINT <name> <spec> | FAILPOINT LIST |
///     FAILPOINT CLEAR (see service/query_service.cc).
///
/// Injected errors are Status::Unavailable with a message beginning
/// "injected failpoint", so callers (and the graceful-degradation layer)
/// can tell injected faults from organic ones in logs.
class FailpointRegistry {
 public:
  /// One armed failpoint's configuration and counters.
  struct Info {
    std::string name;
    std::string spec;          // canonical re-rendering of the armed spec
    uint64_t evaluations = 0;  // times the site was reached while armed
    uint64_t fires = 0;        // times it actually injected (error or delay)
  };

  FailpointRegistry();

  /// The process-wide registry used by AQV_FAILPOINT. First access parses
  /// AQV_FAILPOINTS and seeds from AQV_TEST_SEED.
  static FailpointRegistry& Global();

  /// Arms (or re-arms) `name` with `spec`; "off" disarms. Returns
  /// kInvalidArgument on a malformed spec (the failpoint is left unchanged).
  Status Set(const std::string& name, const std::string& spec);

  /// Disarms every failpoint.
  void ClearAll();

  /// Reseeds every armed (and future) probabilistic stream. Chaos tests
  /// call this so a replayed AQV_TEST_SEED reproduces the fault schedule.
  void Reseed(uint64_t seed);

  /// Armed failpoints, sorted by name.
  std::vector<Info> List() const;

  /// Fast path: false (one relaxed load) unless at least one failpoint is
  /// armed anywhere in the process.
  bool any_armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path, called via AQV_FAILPOINT only when any_armed(): applies
  /// `name`'s spec if armed. Returns the injected error, or OK (possibly
  /// after an injected delay).
  Status Evaluate(const char* name);

 private:
  enum class Action : uint8_t { kError, kDelay };

  struct Failpoint {
    Action action = Action::kError;
    uint64_t delay_micros = 0;
    uint32_t probability_pct = 100;  // fire chance per evaluation
    uint64_t max_fires = 0;          // 0 = unlimited
    uint64_t rng_state = 0;          // splitmix64 stream, advanced per draw
    uint64_t evaluations = 0;
    uint64_t fires = 0;
    std::string spec;
  };

  static uint64_t SeedFor(uint64_t base_seed, const std::string& name);

  uint64_t seed_;
  std::atomic<uint64_t> armed_count_{0};
  mutable std::mutex mu_;
  std::map<std::string, Failpoint> failpoints_;
};

/// Evaluates the named failpoint site: a no-op (one relaxed atomic load)
/// unless some failpoint is armed; returns the injected Status out of the
/// enclosing function when the site fires an error. Use only in functions
/// returning Status or Result<T>.
#define AQV_FAILPOINT(name)                                               \
  do {                                                                    \
    if (::aqv::FailpointRegistry::Global().any_armed()) {                 \
      ::aqv::Status _aqv_fp_status =                                      \
          ::aqv::FailpointRegistry::Global().Evaluate(name);              \
      if (!_aqv_fp_status.ok()) return _aqv_fp_status;                    \
    }                                                                     \
  } while (false)

/// RAII arming for tests: arms `name` with `spec` on construction (aborting
/// the test via the returned status being checked is the caller's job —
/// Set failures leave the scope inert), disarms on destruction.
class FailpointScope {
 public:
  FailpointScope(std::string name, const std::string& spec)
      : name_(std::move(name)) {
    armed_ = FailpointRegistry::Global().Set(name_, spec).ok();
  }
  ~FailpointScope() {
    if (armed_) FailpointRegistry::Global().Set(name_, "off");
  }
  FailpointScope(const FailpointScope&) = delete;
  FailpointScope& operator=(const FailpointScope&) = delete;

  bool armed() const { return armed_; }

 private:
  std::string name_;
  bool armed_ = false;
};

}  // namespace aqv

#endif  // AQV_BASE_FAILPOINT_H_
