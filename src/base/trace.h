#ifndef AQV_BASE_TRACE_H_
#define AQV_BASE_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aqv {

/// One completed span: a named, timed section of work with key=value
/// attributes. Spans form a forest per thread via parent_id (0 = root);
/// start/duration are microseconds on the tracer's monotonic clock.
struct TraceEvent {
  std::string name;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t thread_id = 0;        // hashed std::thread::id, stable per thread
  uint64_t start_micros = 0;     // since the tracer's epoch
  uint64_t duration_micros = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// A process-wide span recorder. Completed spans land in a bounded ring
/// buffer (oldest overwritten first) guarded by a mutex; the *disabled* hot
/// path is a single relaxed atomic load in the TraceSpan constructor —
/// no clock read, no allocation, no lock.
///
/// Use the global instance (`Tracer::Global()`) unless a test wants an
/// isolated buffer. Enable/Disable may race freely with recording threads:
/// a span started while enabled records even if tracing is disabled before
/// it finishes (the ring is bounded, so late records are harmless).
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  explicit Tracer(size_t capacity = kDefaultCapacity);

  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this tracer's construction (monotonic clock).
  uint64_t NowMicros() const;

  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a completed span, overwriting the oldest when full.
  void Record(TraceEvent event);

  /// Recorded spans, oldest first (at most `capacity()` of them).
  std::vector<TraceEvent> Snapshot() const;

  /// Spans lost to ring overwrite since the last Clear.
  uint64_t dropped() const;

  size_t capacity() const { return capacity_; }
  void Clear();

  /// The buffered spans as Chrome trace_event JSON ("X" complete events),
  /// loadable in chrome://tracing and Perfetto. Attributes become "args".
  std::string ChromeTraceJson() const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{1};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<TraceEvent> ring_;  // ring_[total_ % capacity_] is next slot
  uint64_t total_ = 0;            // spans ever recorded since Clear
};

/// RAII span guard. Construction checks the tracer's enabled flag once: if
/// tracing is off the object is inert (every other call is a no-op on a
/// bool). If on, the guard stamps the start time, links itself under the
/// thread's current span, and records into the ring on End()/destruction.
///
///   TraceSpan span("optimize");
///   if (span.active()) span.AddAttr("views", view_count);
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, Tracer& tracer = Tracer::Global());
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when tracing was enabled at construction; guard attribute
  /// formatting with this to keep the disabled path allocation-free.
  bool active() const { return active_; }

  void AddAttr(std::string_view key, std::string_view value);
  void AddAttr(std::string_view key, uint64_t value);
  void AddAttr(std::string_view key, int value) {
    AddAttr(key, static_cast<uint64_t>(value));
  }

  /// Records the span now (idempotent; the destructor is then a no-op).
  /// Lets sequential stages share one scope without artificial blocks.
  void End();

 private:
  Tracer* tracer_ = nullptr;
  bool active_ = false;
  uint64_t saved_parent_ = 0;
  TraceEvent event_;
};

}  // namespace aqv

#endif  // AQV_BASE_TRACE_H_
