#ifndef AQV_BASE_VALUE_H_
#define AQV_BASE_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace aqv {

/// Runtime type of a Value.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// A dynamically typed SQL value: NULL, 64-bit integer, double, or string.
///
/// Comparison semantics follow the needs of this library rather than full
/// three-valued SQL logic: the paper's dialect has no NULL-producing
/// operations, so NULL appears only if a user loads it. We define a *total
/// order* over values (NULL < numerics < strings; numerics compared
/// numerically across kInt64/kDouble) so values can be sorted, grouped and
/// used as hash-map keys deterministically. Predicate evaluation over NULL
/// operands yields false (see exec/expression.h).
class Value {
 public:
  /// Constructs a NULL value.
  Value() : rep_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  /// Accessors; calling the wrong one is a programming error.
  int64_t int64() const { return std::get<int64_t>(rep_); }
  double dbl() const { return std::get<double>(rep_); }
  const std::string& str() const { return std::get<std::string>(rep_); }

  /// Numeric value as double; valid only for numeric types.
  double AsDouble() const;

  /// Total-order comparison: returns <0, 0, >0. NULL sorts first; all
  /// numerics sort together by numeric value (kInt64 before kDouble on
  /// ties, so distinct representations stay distinguishable); strings last.
  int Compare(const Value& other) const;

  /// Value equality under the total order (NULL == NULL here).
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// SQL-comparison equality: false if either side is NULL; numeric types
  /// compare by numeric value.
  bool SqlEquals(const Value& other) const;

  size_t Hash() const;

  /// Renders the value as an SQL literal ("NULL", 42, 3.5, 'abc').
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// A row of values. Tables and query results are multisets of Rows.
using Row = std::vector<Value>;

/// Lexicographic total-order comparison of rows of equal arity.
int CompareRows(const Row& a, const Row& b);

struct RowHash {
  size_t operator()(const Row& row) const;
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace aqv

#endif  // AQV_BASE_VALUE_H_
