#ifndef AQV_BASE_STATUS_H_
#define AQV_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace aqv {

/// Error categories used across the library. The set is deliberately small:
/// callers mostly branch on ok() vs !ok(); codes exist so tests can assert
/// *why* an operation failed (e.g., a view being unusable is kUnusable, not
/// an internal invariant violation).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad IR, bad SQL text, bad schema)
  kNotFound,          // missing table/column/view in a catalog lookup
  kUnusable,          // view not usable for the query (conditions C1..C4 fail)
  kUnsatisfiable,     // a condition set is provably unsatisfiable
  kUnsupported,       // outside the dialect handled by this library
  kInternal,          // invariant violation; indicates a bug
  kResourceExhausted, // a statement exceeded its row budget (ExecContext)
  kDeadlineExceeded,  // a statement exceeded its deadline or was cancelled
  kUnavailable,       // transient: admission rejection, injected fault
};

/// Returns the canonical lowercase name of a status code ("ok", "not found"...).
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Functions that can fail return Status
/// (or Result<T>); the library does not throw exceptions across API
/// boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unusable(std::string msg) {
    return Status(StatusCode::kUnusable, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status out of the current function.
#define AQV_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::aqv::Status _aqv_status = (expr);         \
    if (!_aqv_status.ok()) return _aqv_status;  \
  } while (false)

}  // namespace aqv

#endif  // AQV_BASE_STATUS_H_
