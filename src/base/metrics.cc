#include "base/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace aqv {

namespace {

/// Index of the bucket covering `micros`: 0 for 0, else 1 + floor(log2).
int BucketIndex(uint64_t micros) {
  if (micros == 0) return 0;
  int idx = 64 - std::countl_zero(micros);  // 1 + floor(log2(micros))
  return idx < LatencyHistogram::kNumBuckets
             ? idx
             : LatencyHistogram::kNumBuckets - 1;
}

/// Inclusive value range covered by bucket `i` (see BucketIndex).
std::pair<double, double> BucketRange(int i) {
  if (i == 0) return {0.0, 0.0};
  double lo = i == 1 ? 1.0 : static_cast<double>(uint64_t{1} << (i - 1));
  double hi = static_cast<double>(uint64_t{1} << i) - 1.0;
  return {lo, hi};
}

}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t cur = max_micros_.load(std::memory_order_relaxed);
  while (micros > cur && !max_micros_.compare_exchange_weak(
                             cur, micros, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::mean_micros() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_micros()) / n;
}

double LatencyHistogram::PercentileMicros(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank (1-based, rounded up): the q-th sample exists for any
  // count, so p99 of three samples is the third, not the second.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      auto [lo, hi] = BucketRange(i);
      double within = static_cast<double>(rank - seen) / counts[i];
      return lo + (hi - lo) * within;
    }
    seen += counts[i];
  }
  return BucketRange(kNumBuckets - 1).second;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
  max_micros_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "%-32s %lld\n", name.c_str(),
                  static_cast<long long>(gauge->value()));
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(
        line, sizeof(line),
        "%-32s count=%llu mean=%.1fus p50=%.1fus p99=%.1fus max=%lluus\n",
        name.c_str(), static_cast<unsigned long long>(hist->count()),
        hist->mean_micros(), hist->PercentileMicros(0.5),
        hist->PercentileMicros(0.99),
        static_cast<unsigned long long>(hist->max_micros()));
    out += line;
  }
  return out;
}

namespace {

/// "service.plan_cache.hits" -> "aqv_service_plan_cache_hits". A trailing
/// Prometheus label block ('{...}') is kept verbatim — only the base name
/// is sanitized — so labeled metrics like `service.errors_total{code="x"}`
/// export as `aqv_service_errors_total{code="x"}`.
std::string PromName(const std::string& name) {
  size_t labels = name.find('{');
  std::string out = "aqv_";
  for (char c : name.substr(0, labels)) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  if (labels != std::string::npos) out += name.substr(labels);
  return out;
}

/// The metric name without its label block ("aqv_x{a="1"}" -> "aqv_x").
std::string PromBase(const std::string& prom_name) {
  return prom_name.substr(0, prom_name.find('{'));
}

}  // namespace

std::string MetricsRegistry::PromText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  // Labeled series of one metric family share a single # TYPE line; the
  // map is name-sorted, so a family's series are adjacent.
  std::string last_family;
  for (const auto& [name, counter] : counters_) {
    std::string p = PromName(name);
    std::string family = PromBase(p);
    if (family != last_family) {
      out += "# TYPE " + family + " counter\n";
      last_family = family;
    }
    std::snprintf(line, sizeof(line), "%s %llu\n", p.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n";
    std::snprintf(line, sizeof(line), "%s %lld\n", p.c_str(),
                  static_cast<long long>(gauge->value()));
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " summary\n";
    std::snprintf(line, sizeof(line),
                  "%s{quantile=\"0.5\"} %.1f\n"
                  "%s{quantile=\"0.99\"} %.1f\n"
                  "%s{quantile=\"1\"} %llu\n",
                  p.c_str(), hist->PercentileMicros(0.5), p.c_str(),
                  hist->PercentileMicros(0.99), p.c_str(),
                  static_cast<unsigned long long>(hist->max_micros()));
    out += line;
    std::snprintf(line, sizeof(line), "%s_sum %llu\n%s_count %llu\n",
                  p.c_str(),
                  static_cast<unsigned long long>(hist->sum_micros()),
                  p.c_str(), static_cast<unsigned long long>(hist->count()));
    out += line;
  }
  return out;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second->value());
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace aqv
