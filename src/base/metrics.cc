#include "base/metrics.h"

#include <bit>
#include <cstdio>

namespace aqv {

namespace {

/// Index of the bucket covering `micros`: 0 for 0, else 1 + floor(log2).
int BucketIndex(uint64_t micros) {
  if (micros == 0) return 0;
  int idx = 64 - std::countl_zero(micros);  // 1 + floor(log2(micros))
  return idx < LatencyHistogram::kNumBuckets
             ? idx
             : LatencyHistogram::kNumBuckets - 1;
}

/// Inclusive value range covered by bucket `i` (see BucketIndex).
std::pair<double, double> BucketRange(int i) {
  if (i == 0) return {0.0, 0.0};
  double lo = i == 1 ? 1.0 : static_cast<double>(uint64_t{1} << (i - 1));
  double hi = static_cast<double>(uint64_t{1} << i) - 1.0;
  return {lo, hi};
}

}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::mean_micros() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_micros()) / n;
}

double LatencyHistogram::PercentileMicros(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based), then interpolate inside its bucket.
  uint64_t rank = static_cast<uint64_t>(q * total);
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      auto [lo, hi] = BucketRange(i);
      double within = static_cast<double>(rank - seen) / counts[i];
      return lo + (hi - lo) * within;
    }
    seen += counts[i];
  }
  return BucketRange(kNumBuckets - 1).second;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "%-32s count=%llu mean=%.1fus p50=%.1fus p99=%.1fus\n",
                  name.c_str(),
                  static_cast<unsigned long long>(hist->count()),
                  hist->mean_micros(), hist->PercentileMicros(0.5),
                  hist->PercentileMicros(0.99));
    out += line;
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace aqv
