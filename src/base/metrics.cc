#include "base/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace aqv {

namespace {

/// Index of the bucket covering `micros`: 0 for 0, else 1 + floor(log2).
int BucketIndex(uint64_t micros) {
  if (micros == 0) return 0;
  int idx = 64 - std::countl_zero(micros);  // 1 + floor(log2(micros))
  return idx < LatencyHistogram::kNumBuckets
             ? idx
             : LatencyHistogram::kNumBuckets - 1;
}

/// Inclusive value range covered by bucket `i` (see BucketIndex).
std::pair<double, double> BucketRange(int i) {
  if (i == 0) return {0.0, 0.0};
  double lo = i == 1 ? 1.0 : static_cast<double>(uint64_t{1} << (i - 1));
  double hi = static_cast<double>(uint64_t{1} << i) - 1.0;
  return {lo, hi};
}

}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t cur = max_micros_.load(std::memory_order_relaxed);
  while (micros > cur && !max_micros_.compare_exchange_weak(
                             cur, micros, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::mean_micros() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_micros()) / n;
}

double LatencyHistogram::PercentileMicros(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank (1-based, rounded up): the q-th sample exists for any
  // count, so p99 of three samples is the third, not the second.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      auto [lo, hi] = BucketRange(i);
      double within = static_cast<double>(rank - seen) / counts[i];
      return lo + (hi - lo) * within;
    }
    seen += counts[i];
  }
  return BucketRange(kNumBuckets - 1).second;
}

std::vector<uint64_t> LatencyHistogram::BucketCounts() const {
  std::vector<uint64_t> out(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t LatencyHistogram::BucketUpperMicros(int i) {
  if (i <= 0) return 0;
  if (i >= 63) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
  max_micros_.store(0, std::memory_order_relaxed);
}

std::string PromLabeledName(const std::string& family, const std::string& key,
                            const std::string& value) {
  std::string out = family;
  out += '{';
  out += key;
  out += "=\"";
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"}";
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::SetHelp(const std::string& family,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[family] = help;
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "%-32s %lld\n", name.c_str(),
                  static_cast<long long>(gauge->value()));
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(
        line, sizeof(line),
        "%-32s count=%llu mean=%.1fus p50=%.1fus p99=%.1fus max=%lluus\n",
        name.c_str(), static_cast<unsigned long long>(hist->count()),
        hist->mean_micros(), hist->PercentileMicros(0.5),
        hist->PercentileMicros(0.99),
        static_cast<unsigned long long>(hist->max_micros()));
    out += line;
  }
  return out;
}

namespace {

/// "service.plan_cache.hits" -> "aqv_service_plan_cache_hits". A trailing
/// Prometheus label block ('{...}') is kept verbatim — only the base name
/// is sanitized — so labeled metrics like `service.errors_total{code="x"}`
/// export as `aqv_service_errors_total{code="x"}`.
std::string PromName(const std::string& name) {
  size_t labels = name.find('{');
  std::string out = "aqv_";
  for (char c : name.substr(0, labels)) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  if (labels != std::string::npos) out += name.substr(labels);
  return out;
}

/// The metric name without its label block ("aqv_x{a="1"}" -> "aqv_x").
std::string PromBase(const std::string& prom_name) {
  return prom_name.substr(0, prom_name.find('{'));
}

/// HELP text must escape backslash and newline per the text format.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::PromText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  // Emits the family header (# HELP then # TYPE) once per family; labeled
  // series of one family are adjacent because the maps are name-sorted.
  // Families without registered help self-describe with the internal
  // dotted name, so every family always carries both header lines.
  std::string last_family;
  auto header = [&](const std::string& name, const std::string& family,
                    const char* type) {
    if (family == last_family) return;
    last_family = family;
    std::string dotted = name.substr(0, name.find('{'));
    auto it = help_.find(dotted);
    std::string help = it != help_.end() ? it->second : "aqv metric " + dotted;
    out += "# HELP " + family + " " + EscapeHelp(help) + "\n";
    out += "# TYPE " + family + " " + type + "\n";
  };
  for (const auto& [name, counter] : counters_) {
    std::string p = PromName(name);
    header(name, PromBase(p), "counter");
    std::snprintf(line, sizeof(line), "%s %llu\n", p.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string p = PromName(name);
    header(name, PromBase(p), "gauge");
    std::snprintf(line, sizeof(line), "%s %lld\n", p.c_str(),
                  static_cast<long long>(gauge->value()));
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::string p = PromName(name);
    header(name, PromBase(p), "histogram");
    // Native histogram exposition: cumulative counts at each power-of-two
    // upper bound. le values are the *inclusive* integer bucket bounds
    // (0, 1, 3, 7, ...), exact for integer-microsecond samples. Empty
    // trailing buckets are collapsed into the +Inf series to bound output.
    std::vector<uint64_t> counts = hist->BucketCounts();
    int last_nonempty = -1;
    uint64_t total = 0;
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (counts[i] != 0) last_nonempty = i;
      total += counts[i];
    }
    uint64_t cumulative = 0;
    for (int i = 0; i <= last_nonempty && i < LatencyHistogram::kNumBuckets - 1;
         ++i) {
      cumulative += counts[i];
      std::snprintf(line, sizeof(line), "%s_bucket{le=\"%llu\"} %llu\n",
                    p.c_str(),
                    static_cast<unsigned long long>(
                        LatencyHistogram::BucketUpperMicros(i)),
                    static_cast<unsigned long long>(cumulative));
      out += line;
    }
    std::snprintf(line, sizeof(line),
                  "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %llu\n%s_count %llu\n",
                  p.c_str(), static_cast<unsigned long long>(total), p.c_str(),
                  static_cast<unsigned long long>(hist->sum_micros()),
                  p.c_str(), static_cast<unsigned long long>(total));
    out += line;
  }
  return out;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second->value());
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::Hist h;
    h.name = name;
    h.count = hist->count();
    h.sum_micros = hist->sum_micros();
    h.max_micros = hist->max_micros();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace aqv
