#ifndef AQV_BASE_SERDE_H_
#define AQV_BASE_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "base/result.h"
#include "base/status.h"

namespace aqv {

/// Little-endian binary encoding primitives shared by the durable-storage
/// formats (slotted page records, the WAL, catalog/plan-cache images). The
/// writers append to a std::string; the reader walks a string_view with
/// bounds checks and reports truncation as kInvalidArgument, so a torn or
/// corrupt byte stream surfaces as a clean Status instead of UB.
///
/// Integers use fixed-width little-endian for u32/u64 and LEB128 varints
/// where sizes dominate (row arities, string lengths); doubles are the raw
/// IEEE-754 bit pattern. None of the formats are host-endian-dependent on
/// the platforms this library targets (little-endian Linux/x86/ARM).

void PutFixed32(std::string* out, uint32_t v);
void PutFixed64(std::string* out, uint64_t v);
void PutVarint64(std::string* out, uint64_t v);
void PutDoubleBits(std::string* out, double v);
/// Varint length prefix + raw bytes.
void PutLengthPrefixed(std::string* out, std::string_view s);

/// Sequential bounds-checked reader over an immutable byte range. Each Read*
/// advances the cursor; a short buffer fails with kInvalidArgument and
/// leaves the cursor unspecified (callers abandon the reader on error).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }
  size_t position() const { return pos_; }

  Result<uint32_t> ReadFixed32();
  Result<uint64_t> ReadFixed64();
  Result<uint64_t> ReadVarint64();
  Result<double> ReadDoubleBits();
  /// Reads a varint length prefix, then that many raw bytes (viewing into
  /// the underlying buffer — valid only while it lives).
  Result<std::string_view> ReadLengthPrefixed();
  /// Reads exactly `n` raw bytes.
  Result<std::string_view> ReadBytes(size_t n);

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit checksum over a byte range — the integrity check stamped
/// into page headers and WAL records. Not cryptographic; it exists to catch
/// torn writes and bit rot, mirroring ir/fingerprint.h's choice of hash.
uint64_t Checksum64(std::string_view data);
uint64_t Checksum64(const char* data, size_t size);

}  // namespace aqv

#endif  // AQV_BASE_SERDE_H_
