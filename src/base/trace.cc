#include "base/trace.h"

#include <cstdio>
#include <thread>

namespace aqv {

namespace {

// The innermost live span on this thread; new spans parent under it. Plain
// thread_local (not atomic): only this thread reads or writes it.
thread_local uint64_t tls_current_span = 0;

uint64_t CurrentThreadId() {
  thread_local const uint64_t id =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return id;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all threads
  return *tracer;
}

uint64_t Tracer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[total_ % capacity_] = std::move(event);
  }
  ++total_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
  } else {
    // Oldest entry is the next overwrite slot.
    size_t start = total_ % capacity_;
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
  }
  return out;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_ = 0;
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    AppendJsonEscaped(&out, e.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"aqv\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
                  "\"pid\":1,\"tid\":%llu,\"args\":{",
                  static_cast<unsigned long long>(e.start_micros),
                  static_cast<unsigned long long>(e.duration_micros),
                  // Perfetto wants small-ish tids; fold the hash.
                  static_cast<unsigned long long>(e.thread_id % 1000000));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"span\":%llu,\"parent\":%llu",
                  static_cast<unsigned long long>(e.span_id),
                  static_cast<unsigned long long>(e.parent_id));
    out += buf;
    for (const auto& [key, value] : e.attributes) {
      out += ",\"";
      AppendJsonEscaped(&out, key);
      out += "\":\"";
      AppendJsonEscaped(&out, value);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

TraceSpan::TraceSpan(std::string_view name, Tracer& tracer) {
  if (!tracer.enabled()) return;  // the whole disabled-path cost
  tracer_ = &tracer;
  active_ = true;
  event_.name = name;
  event_.span_id = tracer.NextSpanId();
  event_.parent_id = tls_current_span;
  event_.thread_id = CurrentThreadId();
  event_.start_micros = tracer.NowMicros();
  saved_parent_ = tls_current_span;
  tls_current_span = event_.span_id;
}

void TraceSpan::AddAttr(std::string_view key, std::string_view value) {
  if (!active_) return;
  event_.attributes.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::AddAttr(std::string_view key, uint64_t value) {
  if (!active_) return;
  event_.attributes.emplace_back(std::string(key), std::to_string(value));
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  event_.duration_micros = tracer_->NowMicros() - event_.start_micros;
  tls_current_span = saved_parent_;
  tracer_->Record(std::move(event_));
}

}  // namespace aqv
