#include "catalog/keys.h"

#include <algorithm>

namespace aqv {

std::vector<int> FdClosure(const TableDef& table, const std::vector<int>& attrs) {
  std::vector<bool> in(table.num_columns(), false);
  for (int a : attrs) {
    if (a >= 0 && a < table.num_columns()) in[a] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : table.fds()) {
      bool lhs_covered =
          std::all_of(fd.lhs.begin(), fd.lhs.end(), [&](int a) { return in[a]; });
      if (!lhs_covered) continue;
      for (int a : fd.rhs) {
        if (!in[a]) {
          in[a] = true;
          changed = true;
        }
      }
    }
  }
  std::vector<int> closure;
  for (int i = 0; i < table.num_columns(); ++i) {
    if (in[i]) closure.push_back(i);
  }
  return closure;
}

bool IsSuperKey(const TableDef& table, const std::vector<int>& attrs) {
  return static_cast<int>(FdClosure(table, attrs).size()) == table.num_columns();
}

}  // namespace aqv
