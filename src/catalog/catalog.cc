#include "catalog/catalog.h"

#include <algorithm>
#include <set>

namespace aqv {

int TableDef::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return static_cast<int>(i);
  }
  return -1;
}

Status TableDef::AddKey(std::vector<int> ordinals) {
  if (ordinals.empty()) {
    return Status::InvalidArgument("key for table '" + name_ + "' is empty");
  }
  for (int o : ordinals) {
    if (o < 0 || o >= num_columns()) {
      return Status::InvalidArgument("key ordinal " + std::to_string(o) +
                                     " out of range for table '" + name_ + "'");
    }
  }
  std::sort(ordinals.begin(), ordinals.end());
  ordinals.erase(std::unique(ordinals.begin(), ordinals.end()), ordinals.end());
  // Record the key as an FD key -> all columns as well, so FD closure sees it.
  std::vector<int> all(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) all[i] = static_cast<int>(i);
  fds_.push_back(FunctionalDependency{ordinals, all});
  keys_.push_back(std::move(ordinals));
  return Status::OK();
}

Status TableDef::AddKeyByName(const std::vector<std::string>& names) {
  std::vector<int> ordinals;
  ordinals.reserve(names.size());
  for (const std::string& n : names) {
    int idx = ColumnIndex(n);
    if (idx < 0) {
      return Status::NotFound("key column '" + n + "' not in table '" + name_ +
                              "'");
    }
    ordinals.push_back(idx);
  }
  return AddKey(std::move(ordinals));
}

Status TableDef::AddFunctionalDependency(std::vector<int> lhs,
                                         std::vector<int> rhs) {
  for (int o : lhs) {
    if (o < 0 || o >= num_columns()) {
      return Status::InvalidArgument("FD lhs ordinal out of range for table '" +
                                     name_ + "'");
    }
  }
  for (int o : rhs) {
    if (o < 0 || o >= num_columns()) {
      return Status::InvalidArgument("FD rhs ordinal out of range for table '" +
                                     name_ + "'");
    }
  }
  fds_.push_back(FunctionalDependency{std::move(lhs), std::move(rhs)});
  return Status::OK();
}

Status Catalog::AddTable(TableDef table) {
  if (tables_.count(table.name()) > 0) {
    return Status::InvalidArgument("duplicate table '" + table.name() + "'");
  }
  std::set<std::string> seen;
  for (const std::string& c : table.columns()) {
    if (!seen.insert(c).second) {
      return Status::InvalidArgument("duplicate column '" + c + "' in table '" +
                                     table.name() + "'");
    }
  }
  std::string name = table.name();
  table.schema_epoch_ = ++version_;
  tables_.emplace(std::move(name), std::move(table));
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  return &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

namespace {

void PutOrdinals(const std::vector<int>& ordinals, std::string* out) {
  PutVarint64(out, ordinals.size());
  for (int o : ordinals) PutVarint64(out, static_cast<uint64_t>(o));
}

Result<std::vector<int>> ReadOrdinals(ByteReader* reader) {
  AQV_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint64());
  std::vector<int> ordinals;
  ordinals.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    AQV_ASSIGN_OR_RETURN(uint64_t o, reader->ReadVarint64());
    ordinals.push_back(static_cast<int>(o));
  }
  return ordinals;
}

}  // namespace

void Catalog::SerializeTo(std::string* out) const {
  PutFixed64(out, version_);
  PutVarint64(out, tables_.size());
  for (const auto& [name, def] : tables_) {
    PutLengthPrefixed(out, name);
    PutVarint64(out, def.columns().size());
    for (const std::string& c : def.columns()) PutLengthPrefixed(out, c);
    PutVarint64(out, def.keys().size());
    for (const auto& key : def.keys()) PutOrdinals(key, out);
    PutVarint64(out, def.fds().size());
    for (const auto& fd : def.fds()) {
      PutOrdinals(fd.lhs, out);
      PutOrdinals(fd.rhs, out);
    }
    PutFixed64(out, def.schema_epoch());
  }
}

Status Catalog::DeserializeFrom(ByteReader* reader) {
  std::map<std::string, TableDef> tables;
  AQV_ASSIGN_OR_RETURN(uint64_t version, reader->ReadFixed64());
  AQV_ASSIGN_OR_RETURN(uint64_t num_tables, reader->ReadVarint64());
  for (uint64_t t = 0; t < num_tables; ++t) {
    AQV_ASSIGN_OR_RETURN(std::string_view name, reader->ReadLengthPrefixed());
    AQV_ASSIGN_OR_RETURN(uint64_t num_columns, reader->ReadVarint64());
    std::vector<std::string> columns;
    columns.reserve(num_columns);
    for (uint64_t i = 0; i < num_columns; ++i) {
      AQV_ASSIGN_OR_RETURN(std::string_view c, reader->ReadLengthPrefixed());
      columns.emplace_back(c);
    }
    TableDef def(std::string(name), std::move(columns));
    // Fields are restored directly: replaying AddKey here would append its
    // derived key->all-columns FD a second time (it is already in fds_).
    AQV_ASSIGN_OR_RETURN(uint64_t num_keys, reader->ReadVarint64());
    for (uint64_t i = 0; i < num_keys; ++i) {
      AQV_ASSIGN_OR_RETURN(std::vector<int> key, ReadOrdinals(reader));
      def.keys_.push_back(std::move(key));
    }
    AQV_ASSIGN_OR_RETURN(uint64_t num_fds, reader->ReadVarint64());
    for (uint64_t i = 0; i < num_fds; ++i) {
      AQV_ASSIGN_OR_RETURN(std::vector<int> lhs, ReadOrdinals(reader));
      AQV_ASSIGN_OR_RETURN(std::vector<int> rhs, ReadOrdinals(reader));
      def.fds_.push_back(FunctionalDependency{std::move(lhs), std::move(rhs)});
    }
    AQV_ASSIGN_OR_RETURN(uint64_t schema_epoch, reader->ReadFixed64());
    def.schema_epoch_ = schema_epoch;
    tables.emplace(def.name(), std::move(def));
  }
  tables_ = std::move(tables);
  version_ = version;
  return Status::OK();
}

}  // namespace aqv
