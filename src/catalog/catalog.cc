#include "catalog/catalog.h"

#include <algorithm>
#include <set>

namespace aqv {

int TableDef::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return static_cast<int>(i);
  }
  return -1;
}

Status TableDef::AddKey(std::vector<int> ordinals) {
  if (ordinals.empty()) {
    return Status::InvalidArgument("key for table '" + name_ + "' is empty");
  }
  for (int o : ordinals) {
    if (o < 0 || o >= num_columns()) {
      return Status::InvalidArgument("key ordinal " + std::to_string(o) +
                                     " out of range for table '" + name_ + "'");
    }
  }
  std::sort(ordinals.begin(), ordinals.end());
  ordinals.erase(std::unique(ordinals.begin(), ordinals.end()), ordinals.end());
  // Record the key as an FD key -> all columns as well, so FD closure sees it.
  std::vector<int> all(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) all[i] = static_cast<int>(i);
  fds_.push_back(FunctionalDependency{ordinals, all});
  keys_.push_back(std::move(ordinals));
  return Status::OK();
}

Status TableDef::AddKeyByName(const std::vector<std::string>& names) {
  std::vector<int> ordinals;
  ordinals.reserve(names.size());
  for (const std::string& n : names) {
    int idx = ColumnIndex(n);
    if (idx < 0) {
      return Status::NotFound("key column '" + n + "' not in table '" + name_ +
                              "'");
    }
    ordinals.push_back(idx);
  }
  return AddKey(std::move(ordinals));
}

Status TableDef::AddFunctionalDependency(std::vector<int> lhs,
                                         std::vector<int> rhs) {
  for (int o : lhs) {
    if (o < 0 || o >= num_columns()) {
      return Status::InvalidArgument("FD lhs ordinal out of range for table '" +
                                     name_ + "'");
    }
  }
  for (int o : rhs) {
    if (o < 0 || o >= num_columns()) {
      return Status::InvalidArgument("FD rhs ordinal out of range for table '" +
                                     name_ + "'");
    }
  }
  fds_.push_back(FunctionalDependency{std::move(lhs), std::move(rhs)});
  return Status::OK();
}

Status Catalog::AddTable(TableDef table) {
  if (tables_.count(table.name()) > 0) {
    return Status::InvalidArgument("duplicate table '" + table.name() + "'");
  }
  std::set<std::string> seen;
  for (const std::string& c : table.columns()) {
    if (!seen.insert(c).second) {
      return Status::InvalidArgument("duplicate column '" + c + "' in table '" +
                                     table.name() + "'");
    }
  }
  std::string name = table.name();
  table.schema_epoch_ = ++version_;
  tables_.emplace(std::move(name), std::move(table));
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  return &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

}  // namespace aqv
