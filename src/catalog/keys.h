#ifndef AQV_CATALOG_KEYS_H_
#define AQV_CATALOG_KEYS_H_

#include <vector>

#include "catalog/catalog.h"

namespace aqv {

/// Attribute-set closure under a table's functional dependencies
/// (Armstrong closure): the set of ordinals determined by `attrs`.
/// Used by the Section 5 key reasoning ("if A functionally determines B and
/// B is a key, then so is A").
std::vector<int> FdClosure(const TableDef& table, const std::vector<int>& attrs);

/// True if `attrs` functionally determines every column of `table`, i.e.,
/// `attrs` is a (super)key.
bool IsSuperKey(const TableDef& table, const std::vector<int>& attrs);

}  // namespace aqv

#endif  // AQV_CATALOG_KEYS_H_
