#ifndef AQV_CATALOG_CATALOG_H_
#define AQV_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/serde.h"
#include "base/status.h"

namespace aqv {

/// A functional dependency lhs -> rhs over the columns of one table, with
/// columns identified by ordinal position.
struct FunctionalDependency {
  std::vector<int> lhs;
  std::vector<int> rhs;
};

/// Schema of a base table: a name, an ordered list of column names, and
/// optional meta-data (keys, functional dependencies) used by the set/key
/// reasoning of Section 5. A table with at least one key is guaranteed to be
/// a set; a table with no keys may be a multiset.
class TableDef {
 public:
  TableDef() = default;
  TableDef(std::string name, std::vector<std::string> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Ordinal of `column`, or -1 if absent.
  int ColumnIndex(const std::string& column) const;

  /// Declares the columns at `ordinals` to be a key. Returns
  /// InvalidArgument on an out-of-range ordinal or empty key.
  Status AddKey(std::vector<int> ordinals);
  /// Convenience overload taking column names.
  Status AddKeyByName(const std::vector<std::string>& names);

  /// Declares a functional dependency. Key declarations are also recorded as
  /// FDs (key -> all columns) for closure computation.
  Status AddFunctionalDependency(std::vector<int> lhs, std::vector<int> rhs);

  const std::vector<std::vector<int>>& keys() const { return keys_; }
  const std::vector<FunctionalDependency>& fds() const { return fds_; }

  /// True if the table is guaranteed duplicate-free (i.e., has a key).
  bool IsSet() const { return !keys_.empty(); }

  /// Catalog::version() at which this table was registered (0 until it is
  /// added to a catalog). Together with Database::VersionOf this tags every
  /// table with a (schema epoch, data epoch) pair, so a pinned snapshot can
  /// report exactly which state it reads.
  uint64_t schema_epoch() const { return schema_epoch_; }

 private:
  friend class Catalog;

  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<int>> keys_;
  std::vector<FunctionalDependency> fds_;
  uint64_t schema_epoch_ = 0;
};

/// Name -> schema registry for base tables. Views are registered separately
/// (see rewrite/rewriter.h) because a view's schema is derived from its
/// defining query.
class Catalog {
 public:
  /// Registers `table`. Fails with InvalidArgument on duplicate names or
  /// duplicate column names within the table.
  Status AddTable(TableDef table);

  bool HasTable(const std::string& name) const;
  Result<const TableDef*> GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Monotonic schema version, bumped by every successful AddTable. Plan
  /// caches (src/service) read it to detect DDL cheaply; callers that share
  /// a Catalog across threads must serialize access with their own latch.
  uint64_t version() const { return version_; }

  /// Appends a self-contained byte encoding of the whole catalog — every
  /// TableDef with its columns, keys, FDs and schema epoch, plus version_ —
  /// to `*out`. The storage engine packs this into checkpoint pages.
  void SerializeTo(std::string* out) const;

  /// Reconstructs the catalog serialized by SerializeTo, replacing this
  /// instance's contents. Keys and FDs are restored verbatim (NOT re-derived
  /// via AddKey, which would double the key->all-columns FDs on every
  /// round-trip).
  Status DeserializeFrom(ByteReader* reader);

 private:
  std::map<std::string, TableDef> tables_;
  uint64_t version_ = 0;
};

}  // namespace aqv

#endif  // AQV_CATALOG_CATALOG_H_
