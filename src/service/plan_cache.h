#ifndef AQV_SERVICE_PLAN_CACHE_H_
#define AQV_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/query.h"

namespace aqv {

/// A bounded, thread-safe LRU cache of optimized plans, keyed by the
/// canonical query fingerprint string of ir/fingerprint.h. Keys are full
/// canonical serializations (not just 64-bit hashes), so two distinct
/// queries can never collide onto one entry.
///
/// Entries carry the invalidation set computed by the optimizer
/// (OptimizeResult::dependencies). The owning service fires
/// InvalidateDependency on INSERT/REFRESH of a table or view and Clear on
/// DDL, so a stale rewrite is never served: any statement that could change
/// a plan's validity or its result set drops the affected entries first,
/// under the service's exclusive latch.
///
/// Entries are immutable once inserted and handed out as
/// shared_ptr<const Entry>: a hit copies one pointer under the mutex (not a
/// deep Query), keeping the critical section tiny on the hot path, and an
/// entry evicted or invalidated mid-execution stays alive until its last
/// reader drops it.
class PlanCache {
 public:
  struct Entry {
    Query plan;
    bool used_materialized_view = false;
    int rewritings_considered = 0;
    double cost_original = 0;
    double cost_chosen = 0;
    /// Tables/views whose mutation invalidates this entry (sorted).
    std::vector<std::string> dependencies;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the entry for `key` and promotes it to most-recently-used, or
  /// nullptr on miss.
  EntryPtr Lookup(const std::string& key);

  /// Inserts (or replaces) the entry for `key`, evicting the LRU entry when
  /// over capacity. A zero-capacity cache stores nothing.
  void Insert(const std::string& key, EntryPtr entry);

  /// Drops the entry for `key` if present (a cached plan that just failed
  /// mid-execution; the next statement re-optimizes). Returns 1 or 0.
  size_t Erase(const std::string& key);

  /// Drops every entry whose dependency set contains `name` (a base table
  /// or view that was just mutated). Returns the number dropped.
  size_t InvalidateDependency(const std::string& name);

  /// Drops everything. Used on DDL: a new table or view can change the
  /// optimizer's choice for any query, even ones whose inputs are untouched.
  size_t Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Every (key, entry) pair, least-recently-used first: re-Inserting them
  /// in order reproduces the recency order. The storage layer persists this
  /// across restarts so a recovered service starts with a warm cache.
  std::vector<std::pair<std::string, EntryPtr>> Snapshot() const;

 private:
  using LruList = std::list<std::pair<std::string, EntryPtr>>;  // front = MRU

  mutable std::mutex mu_;
  size_t capacity_;
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> index_;
};

}  // namespace aqv

#endif  // AQV_SERVICE_PLAN_CACHE_H_
