#ifndef AQV_SERVICE_QUERY_SERVICE_H_
#define AQV_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "base/result.h"
#include "catalog/catalog.h"
#include "exec/evaluator.h"
#include "exec/table.h"
#include "ir/views.h"
#include "rewrite/rewriter.h"
#include "service/plan_cache.h"

namespace aqv {

/// Construction-time knobs of a QueryService.
struct ServiceOptions {
  /// Maximum number of cached plans; 0 disables caching outright.
  size_t plan_cache_capacity = 256;
  /// Master switch for the rewrite-plan cache (the bench sweeps this).
  bool enable_plan_cache = true;
  /// SELECTs slower than this end up in the slow-query log (statement,
  /// fingerprint, parse/optimize/execute breakdown; see SLOWLOG). 0 disables.
  uint64_t slow_query_micros = 0;
  /// Bound on the slow-query log; older entries are dropped first.
  size_t slow_query_log_capacity = 64;
  RewriteOptions rewrite;
  EvalOptions eval;

  ServiceOptions() { rewrite.use_key_information = true; }
};

/// Outcome of one statement. `table` is set for SELECT; everything else
/// reports through `message` (acks, EXPLAIN text, STATS report, listings).
struct StatementResult {
  std::string message;
  std::optional<Table> table;
  bool cache_hit = false;
  bool used_materialized_view = false;
};

/// Point-in-time snapshot of the service's runtime counters, for embedders
/// that want numbers rather than the STATS text.
struct ServiceStats {
  uint64_t statements = 0;         // statements accepted (all kinds)
  uint64_t queries_served = 0;     // SELECTs executed to completion
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_invalidated = 0;  // entries dropped by write hooks
  uint64_t rewrites_applied = 0;   // chosen plan uses a materialized view
  uint64_t rewrites_skipped = 0;   // original plan kept
  uint64_t slow_queries = 0;       // SELECTs over ServiceOptions::slow_query_micros
  size_t plan_cache_size = 0;
  size_t plan_cache_capacity = 0;  // configured bound (0 = caching disabled)
  double plan_cache_hit_rate = 0;  // hits / (hits + misses), 0 when no lookups
  double optimize_p50_micros = 0;
  double optimize_p99_micros = 0;
  uint64_t optimize_max_micros = 0;
  double exec_p50_micros = 0;
  double exec_p99_micros = 0;
  uint64_t exec_max_micros = 0;

  std::string ToString() const;
};

/// One SELECT that exceeded ServiceOptions::slow_query_micros: the statement
/// text, its canonical fingerprint (ir/fingerprint.h) for grouping repeats,
/// and the per-stage wall-time breakdown.
struct SlowQueryRecord {
  std::string statement;
  uint64_t fingerprint = 0;
  uint64_t parse_micros = 0;
  uint64_t optimize_micros = 0;  // 0 on a plan-cache hit
  uint64_t exec_micros = 0;
  uint64_t total_micros = 0;
  bool cache_hit = false;
};

/// An embeddable, thread-safe query service over the aqv library: it owns a
/// Catalog, a Database and a ViewRegistry behind one reader/writer latch,
/// executes the same statement dialect as examples/aqvsh.cpp, and caches
/// optimized plans in a bounded LRU keyed by the canonical IR fingerprint
/// (ir/fingerprint.h).
///
/// Concurrency contract:
///   - Read statements (SELECT, EXPLAIN, WHY, SAVE, TABLES, VIEWS) take the
///     latch shared and may run in parallel.
///   - Write statements (CREATE TABLE/VIEW, INSERT, REFRESH, LOAD) take it
///     exclusive, mutate, and fire the plan-cache invalidation hook before
///     releasing: dependency-precise for INSERT/REFRESH/LOAD, full clear
///     for DDL (new tables/views can change any plan choice).
///   - A reader inserts a freshly optimized plan while still holding the
///     shared latch, so a concurrent writer's invalidation is always
///     ordered after the insert and no stale plan can linger.
///
/// Metrics are exposed three ways: the STATS statement (human-readable),
/// Stats() (struct snapshot), and metrics() (the raw registry).
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = ServiceOptions{});

  /// Parses and executes one statement (same dialect as aqvsh; see HELP
  /// there). Thread-safe. Statement keywords are matched case-insensitively.
  Result<StatementResult> Execute(const std::string& statement);

  /// Typed convenience wrapper: Execute on a SELECT, returning the rows.
  Result<Table> Select(const std::string& sql);

  /// Replaces the service's catalog, database and view registry wholesale
  /// (e.g. with a pre-built workload) and clears the plan cache.
  Status Bootstrap(Catalog catalog, Database db, ViewRegistry views);

  ServiceStats Stats() const;
  void ResetStats();
  MetricsRegistry& metrics() { return metrics_; }

  /// Prometheus text exposition of the service metrics (also available as
  /// the STATS PROM statement). Point-in-time gauges (plan-cache size /
  /// capacity) are refreshed on each call.
  std::string StatsPromText();

  /// Snapshot of the slow-query log, oldest first (see
  /// ServiceOptions::slow_query_micros and the SLOWLOG statement).
  std::vector<SlowQueryRecord> SlowQueries() const;

 private:
  Result<StatementResult> Dispatch(const std::string& stmt,
                                   const std::string& upper);

  // Read statements (caller documentation only: each takes latch_ shared).
  Result<StatementResult> HandleSelect(const std::string& stmt);
  Result<StatementResult> HandleExplain(const std::string& select_stmt);
  Result<StatementResult> HandleExplainAnalyze(const std::string& select_stmt);
  Result<StatementResult> HandleTrace(const std::string& stmt);
  Result<StatementResult> HandleSlowLog() const;
  Result<StatementResult> HandleWhy(const std::string& rest);
  Result<StatementResult> HandleSave(const std::string& stmt);
  Result<StatementResult> HandleListTables();
  Result<StatementResult> HandleListViews();

  // Write statements (each takes latch_ exclusive and fires invalidation).
  Result<StatementResult> HandleCreateTable(const std::string& stmt);
  Result<StatementResult> HandleCreateView(const std::string& stmt,
                                           bool materialized);
  Result<StatementResult> HandleInsert(const std::string& stmt);
  Result<StatementResult> HandleRefresh(const std::string& name);
  Result<StatementResult> HandleLoad(const std::string& stmt);

  /// Optimizes `query` through the plan cache (lookup, else optimize and
  /// insert). Caller must hold latch_ at least shared. `optimize_micros`
  /// (optional) receives the optimizer wall time — 0 on a cache hit.
  Result<PlanCache::EntryPtr> PlanThroughCache(const Query& query,
                                               bool* cache_hit,
                                               uint64_t* optimize_micros = nullptr);

  /// Appends to the bounded slow-query log (thread-safe).
  void RecordSlowQuery(SlowQueryRecord record);

  /// Recomputes the named view's contents into db_. Caller holds latch_
  /// exclusive; fires the view's invalidation hook.
  Result<size_t> RefreshLocked(const std::string& name);

  ServiceOptions options_;

  /// Guards catalog_, db_ and views_. The plan cache and metrics have their
  /// own internal synchronization and are safe under either latch mode.
  mutable std::shared_mutex latch_;
  Catalog catalog_;
  Database db_;
  ViewRegistry views_;

  PlanCache plan_cache_;

  /// Bounded slow-query log; its own lock so recording never contends with
  /// the data latch.
  mutable std::mutex slow_log_mutex_;
  std::deque<SlowQueryRecord> slow_log_;

  MetricsRegistry metrics_;
  Counter& statements_;
  Counter& queries_served_;
  Counter& cache_hits_;
  Counter& cache_misses_;
  Counter& cache_invalidated_;
  Counter& rewrites_applied_;
  Counter& rewrites_skipped_;
  Counter& slow_queries_;
  Gauge& cache_size_gauge_;
  Gauge& cache_capacity_gauge_;
  LatencyHistogram& optimize_latency_;
  LatencyHistogram& exec_latency_;
};

}  // namespace aqv

#endif  // AQV_SERVICE_QUERY_SERVICE_H_
