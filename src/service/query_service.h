#ifndef AQV_SERVICE_QUERY_SERVICE_H_
#define AQV_SERVICE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/exec_context.h"
#include "base/metrics.h"
#include "base/query_stats.h"
#include "base/result.h"
#include "base/telemetry.h"
#include "catalog/catalog.h"
#include "exec/evaluator.h"
#include "exec/table.h"
#include "ir/views.h"
#include "maintain/incremental.h"
#include "parser/parser.h"
#include "rewrite/rewriter.h"
#include "service/latch_manager.h"
#include "service/plan_cache.h"
#include "storage/storage_engine.h"

namespace aqv {

/// Construction-time knobs of a QueryService.
struct ServiceOptions {
  /// Maximum number of cached plans; 0 disables caching outright.
  size_t plan_cache_capacity = 256;
  /// Master switch for the rewrite-plan cache (the bench sweeps this).
  bool enable_plan_cache = true;
  /// Number of per-table latch stripes. 1 degenerates to the pre-stripe
  /// global reader/writer latch (the bench's baseline); more stripes let
  /// writes to disjoint tables proceed in parallel.
  size_t latch_stripes = LatchManager::kDefaultStripes;
  /// SELECTs slower than this end up in the slow-query log (statement,
  /// fingerprint, parse/optimize/execute breakdown; see SLOWLOG). 0 disables.
  uint64_t slow_query_micros = 0;
  /// Bound on the slow-query log; older entries are dropped first.
  size_t slow_query_log_capacity = 64;

  // ---- Resource governance (see README "Resource limits & degradation").
  /// Per-SELECT deadline, microseconds from statement start; 0 disables.
  /// Exceeding it returns kDeadlineExceeded with all latches released.
  uint64_t statement_deadline_micros = 0;
  /// Per-SELECT budget on rows processed across all operators (the work and
  /// intermediate-size proxy); 0 disables. Exceeding it returns
  /// kResourceExhausted.
  size_t statement_row_budget = 0;
  /// Admission control: statements allowed in flight at once; 0 = unlimited.
  /// Over-limit statements wait up to `admission_wait_micros`, then fail
  /// with kUnavailable ("SERVER_BUSY"). Introspection statements (STATS,
  /// TRACE, FAILPOINT, SLOWLOG, TABLES, VIEWS) bypass admission so a busy
  /// server stays inspectable.
  size_t max_concurrent_statements = 0;
  uint64_t admission_wait_micros = 50000;
  /// Hard cap on statement text length in bytes; longer statements are
  /// rejected with kInvalidArgument before parsing. 0 disables.
  size_t max_statement_bytes = 1 << 20;
  /// Rewrite-time failures before a materialized view is quarantined from
  /// rewrite candidacy (visible in STATS, cleared by a successful REFRESH);
  /// 0 disables quarantine.
  uint32_t view_quarantine_threshold = 3;
  /// Auto-unquarantine cooldown: a quarantined view re-enters rewrite
  /// candidacy (with a clean failure slate) once this many statements have
  /// been accepted since it crossed the threshold. The write path refreshes
  /// views itself now, so without a cooldown a transient fault could strand
  /// a view out of candidacy forever on a deployment that never runs a
  /// manual REFRESH. 0 keeps quarantine permanent until REFRESH.
  uint64_t quarantine_cooldown_statements = 4096;
  /// Graceful degradation: when a rewritten or cached plan fails
  /// mid-execution (or the optimizer itself fails), retry once on the
  /// unrewritten query and record the event instead of failing the
  /// statement.
  bool degrade_on_failure = true;

  // ---- Durable storage (see README "Durability contract").
  /// Path of the database file; empty (the default) keeps the service fully
  /// in-memory — no WAL, no checkpoints, no recovery. When set, the service
  /// opens (or creates) the file at construction, recovers the last
  /// consistent commit, and from then on every committed write epoch is
  /// WAL-logged before publication. The WAL lives at storage_path + ".wal".
  std::string storage_path;
  /// Buffer-pool capacity for checkpoint/recovery page I/O, in 8 KiB pages.
  size_t storage_buffer_pages = 64;
  /// fsync the WAL at every commit (the durability guarantee). Turning it
  /// off trades the last few commits for commit latency; the E18 bench
  /// quantifies the gap.
  bool storage_fsync_wal = true;
  /// Group commit: concurrent commits coalesce onto one WAL fsync
  /// (leader/follower). Acked-implies-durable is preserved exactly; only
  /// the fsync count drops. Off = the fsync-per-commit baseline the E21
  /// bench measures against.
  bool storage_group_commit = true;
  /// Lets a group-commit leader linger this long before fsyncing so more
  /// followers can pile onto its batch. 0 (the default) adds no latency
  /// and still coalesces whatever arrived while the previous fsync ran.
  uint64_t storage_group_commit_window_micros = 0;
  /// Recovery applies the WAL tail into one staging image published at a
  /// single COW epoch instead of one publication per record. Off = the
  /// per-record baseline the E21 bench measures against.
  bool storage_staged_replay = true;
  /// Auto-checkpoint: a background thread checkpoints once the WAL passes
  /// this many bytes / this many commits since the last checkpoint, so the
  /// log can never grow unbounded. 0 disables that trigger. The commit
  /// threshold deliberately sits above E18's 4096-commit recovery fixture.
  uint64_t storage_auto_checkpoint_wal_bytes = 16ull << 20;
  uint64_t storage_auto_checkpoint_commits = 16384;
  /// Writer backpressure: once the WAL passes this cap, writers that outrun
  /// the auto-checkpointer stall (bounded sleep) until it catches up, then
  /// fail with a clean SERVER_BUSY error at the deadline. 0 disables.
  uint64_t storage_backpressure_wal_bytes = 64ull << 20;
  uint64_t storage_backpressure_wait_micros = 2000000;

  // ---- Time-series telemetry (see README "Observability").
  /// Background sampler interval for the telemetry recorder: every tick
  /// snapshots all registered metrics into a delta-encoded window queryable
  /// via STATS HISTORY / MONITOR. 0 (the default) disables the sampler
  /// thread — MONITOR still cuts windows on demand, so the surface works
  /// without a resident thread.
  uint64_t telemetry_interval_micros = 0;
  /// Telemetry ring capacity in windows; oldest windows are dropped (and
  /// counted) once full.
  size_t telemetry_history_capacity = 240;
  /// Bound on per-fingerprint cost-attribution aggregates (STATS
  /// ATTRIBUTION, FingerprintProfiles()); new fingerprints past the bound
  /// are counted as overflow instead of tracked. 0 disables attribution
  /// aggregation entirely.
  size_t attribution_capacity = 512;

  // ---- Execution engine (see README "Execution engine").
  /// Batch-at-a-time columnar execution for scans, filters and hash-group
  /// aggregation; operators without a vectorized implementation fall back
  /// to the row engine per operator, with identical results (enforced by
  /// the row-vs-batch differential oracle). Copied into `eval.vectorized`
  /// at construction; set false to force the row engine everywhere.
  bool vectorized = true;

  RewriteOptions rewrite;
  EvalOptions eval;

  ServiceOptions() { rewrite.use_key_information = true; }
};

/// Outcome of one statement. `table` is set for SELECT; everything else
/// reports through `message` (acks, EXPLAIN text, STATS report, listings).
struct StatementResult {
  std::string message;
  std::optional<Table> table;
  bool cache_hit = false;
  bool used_materialized_view = false;
  /// The statement succeeded on a degraded path: its rewritten/cached plan
  /// (or the optimizer) failed and the unrewritten query was retried.
  bool degraded = false;
};

/// A transactionally consistent, immutable copy of the service's state:
/// the catalog and view registry by value, and the database as a pinned
/// table-version vector — copying a Database shares the per-table row
/// storage (shared_ptr<const Table>), so the pin is cheap and later writes
/// through the service (which replace whole version pointers) never touch
/// it. `epoch` is the database's version counter at pin time; two snapshots
/// with equal epochs saw identical contents.
struct ServiceSnapshot {
  Catalog catalog;
  ViewRegistry views;
  Database db;
  uint64_t epoch = 0;
};
using ServiceSnapshotPtr = std::shared_ptr<const ServiceSnapshot>;

/// Point-in-time snapshot of the service's runtime counters, for embedders
/// that want numbers rather than the STATS text.
struct ServiceStats {
  uint64_t statements = 0;         // statements accepted (all kinds)
  uint64_t queries_served = 0;     // SELECTs executed to completion
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_invalidated = 0;  // entries dropped by write hooks
  uint64_t rewrites_applied = 0;   // chosen plan uses a materialized view
  uint64_t rewrites_skipped = 0;   // original plan kept
  uint64_t slow_queries = 0;       // SELECTs over ServiceOptions::slow_query_micros
  uint64_t snapshots_pinned = 0;   // BEGIN SNAPSHOT + PinSnapshot() calls
  uint64_t snapshot_reads = 0;     // SELECTs served from a pinned snapshot
  uint64_t admission_rejects = 0;  // statements rejected SERVER_BUSY
  uint64_t degraded_fallbacks = 0; // retries on the unrewritten plan
  uint64_t rows_inserted = 0;      // rows applied by INSERT/UPDATE/COMMIT
  uint64_t rows_deleted = 0;       // rows removed by DELETE/UPDATE/COMMIT
  uint64_t views_maintained = 0;   // write-path incremental maintenances
  uint64_t views_recomputed = 0;   // write-path full recomputes (fallback)
  /// Per-table MVCC accounting at snapshot time: live versions, bytes pinned
  /// by retired-but-referenced versions, oldest pinned epoch (see
  /// Database::MvccStats).
  std::vector<Database::TableMvcc> mvcc;
  uint64_t mvcc_oldest_pinned_epoch = 0;  // min across tables, 0 = none pinned
  /// Failed statements by status-code token ("invalid_argument",
  /// "deadline_exceeded", ...), sorted by token.
  std::vector<std::pair<std::string, uint64_t>> errors_by_code;
  /// Materialized views currently excluded from rewrite candidacy.
  std::vector<std::string> quarantined_views;
  size_t plan_cache_size = 0;
  size_t plan_cache_capacity = 0;  // configured bound (0 = caching disabled)
  size_t latch_stripes = 0;        // configured stripe count
  double plan_cache_hit_rate = 0;  // hits / (hits + misses), 0 when no lookups
  double optimize_p50_micros = 0;
  double optimize_p99_micros = 0;
  uint64_t optimize_max_micros = 0;
  double exec_p50_micros = 0;
  double exec_p99_micros = 0;
  uint64_t exec_max_micros = 0;
  double maintain_p50_micros = 0;  // per-statement view-maintenance wall time
  double maintain_p99_micros = 0;
  uint64_t maintain_max_micros = 0;

  // ---- Durable storage (zero / false when no storage_path is configured).
  bool storage_attached = false;
  uint64_t storage_pages_read = 0;
  uint64_t storage_pages_written = 0;
  uint64_t storage_wal_bytes = 0;     // bytes appended since start
  uint64_t storage_wal_records = 0;   // commits logged since start
  uint64_t storage_wal_fsyncs = 0;
  uint64_t storage_checkpoints = 0;
  uint64_t storage_wal_replayed = 0;  // commits replayed by recovery
  int64_t storage_recovery_ms = 0;    // wall time of the last recovery
  uint64_t storage_last_commit_seq = 0;
  uint64_t storage_checkpoint_seq = 0;
  uint64_t storage_pool_hits = 0;      // buffer-pool hits (checkpoint/recovery I/O)
  uint64_t storage_pool_misses = 0;
  double storage_fsync_p50_micros = 0;  // WAL fsync latency distribution
  double storage_fsync_p99_micros = 0;
  uint64_t storage_fsync_max_micros = 0;
  double storage_checkpoint_p99_micros = 0;  // full-checkpoint duration
  int64_t storage_recovery_replay_ms = 0;    // WAL-replay phase of recovery
  int64_t storage_recovery_recompute_ms = 0;  // stale-view recompute phase
  uint64_t storage_wal_size_bytes = 0;       // current WAL file size (gauge)
  uint64_t storage_auto_checkpoints = 0;     // background checkpoints taken
  uint64_t storage_backpressure_waits = 0;   // writers stalled on the cap
  double storage_group_batch_p50 = 0;        // commits coalesced per fsync
  double storage_group_batch_p99 = 0;
  uint64_t storage_pages_quarantined = 0;    // data pages under quarantine
  /// Tables (and dependent materialized views) quarantined by recovery
  /// after checksum or mid-log WAL corruption, with the reason. Reads and
  /// writes error cleanly; a full LOAD replacement repairs and clears.
  std::vector<std::pair<std::string, std::string>> quarantined_tables;

  // ---- Observability of the observability (PR 7).
  uint64_t trace_dropped_spans = 0;    // spans lost to trace-ring overflow
  uint64_t telemetry_windows = 0;      // windows sampled since start
  uint64_t telemetry_dropped = 0;      // windows evicted from the ring

  std::string ToString() const;
};

/// One statement that exceeded ServiceOptions::slow_query_micros: the
/// statement text, its canonical fingerprint (ir/fingerprint.h) for grouping
/// repeats and joining against plan-cache stats, the database epoch it ran
/// against, and the per-stage wall-time breakdown (write stages are 0 for
/// SELECTs and vice versa).
struct SlowQueryRecord {
  std::string statement;
  uint64_t fingerprint = 0;  // 0 for write statements
  uint64_t epoch = 0;        // database epoch the statement ran against
  uint64_t parse_micros = 0;
  uint64_t optimize_micros = 0;  // 0 on a plan-cache hit
  uint64_t exec_micros = 0;
  uint64_t maintain_micros = 0;    // view maintenance (writes)
  uint64_t wal_commit_micros = 0;  // WAL append + fsync (writes, durable)
  uint64_t total_micros = 0;
  bool cache_hit = false;
};

/// An embeddable, thread-safe query service over the aqv library: it owns a
/// Catalog, a Database and a ViewRegistry behind a striped per-table latch
/// manager (service/latch_manager.h), executes the same statement dialect as
/// examples/aqvsh.cpp, and caches optimized plans in a bounded LRU keyed by
/// the canonical IR fingerprint (ir/fingerprint.h).
///
/// Concurrency contract (see also README "Concurrency contract"):
///   - Every statement first takes the ddl latch: shared for row reads and
///     row writes, exclusive for schema changes (CREATE TABLE/VIEW, LOAD
///     into a new table, Bootstrap). Holding it shared freezes the catalog
///     and view registry, so statements parse/bind before knowing their
///     footprint.
///   - After binding, a statement acquires the latch stripes covering its
///     footprint — the transitive closure of its FROM names through view
///     definitions, plus every materialized view the rewriter could
///     substitute (those whose base tables are a subset of the query's).
///     SELECT/EXPLAIN take their stripes shared; INSERT/REFRESH/LOAD take
///     the written name exclusive. Writes to disjoint stripes run in
///     parallel.
///   - Deadlock freedom: ddl before stripes, stripes in ascending index
///     order — one global acquisition order, so no cycle can form.
///   - The plan-cache ordering invariant survives sharding because a cached
///     entry's dependency set is always a subset of the statement's
///     footprint: a reader inserts a freshly optimized plan while still
///     holding its stripes shared, so a writer's invalidation (which needs
///     the written stripe exclusive) is always ordered after the insert.
///   - BEGIN SNAPSHOT (or PinSnapshot()) briefly holds every stripe shared,
///     waiting out in-flight writers, then copies the state — cheap, since
///     table storage is copy-on-write shared_ptrs. Reads on the snapshot
///     run latch-free against a single epoch; writes never block on open
///     snapshots and snapshots never see them.
///
/// Metrics are exposed three ways: the STATS statement (human-readable),
/// Stats() (struct snapshot), and metrics() (the raw registry).
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = ServiceOptions{});

  /// Stops and joins the auto-checkpoint thread before storage teardown.
  ~QueryService();

  /// Parses and executes one statement (same dialect as aqvsh; see HELP
  /// there). Thread-safe. Statement keywords are matched case-insensitively.
  ///
  /// Beyond the aqvsh dialect, BEGIN SNAPSHOT pins a snapshot for the
  /// calling thread — subsequent SELECTs on that thread read the pinned
  /// epoch, latch-free, until COMMIT releases it. Writes and DDL are
  /// rejected on a thread with an open snapshot.
  ///
  /// BEGIN WRITE opens a per-thread write batch: subsequent INSERTs buffer
  /// rows instead of applying them, COMMIT applies the whole batch through
  /// the transactional write path (one COW copy per table, dependent views
  /// maintained, everything published at one epoch), and ROLLBACK discards
  /// it. Only INSERT (and SELECT, which reads committed state) may run
  /// inside a batch; a failed COMMIT discards the batch with nothing
  /// published.
  Result<StatementResult> Execute(const std::string& statement);

  /// Typed convenience wrapper: Execute on a SELECT, returning the rows.
  Result<Table> Select(const std::string& sql);

  /// Pins the current state into an immutable snapshot: briefly holds every
  /// stripe shared (waiting out in-flight writers), then copies the catalog,
  /// views and table-version vector. Thread-safe; the snapshot is
  /// independent of the BEGIN SNAPSHOT statement dialect and may be shared
  /// across threads.
  ServiceSnapshotPtr PinSnapshot();

  /// Executes a SELECT against a pinned snapshot: plans fresh (the plan
  /// cache tracks current state, not the snapshot's) and reads only the
  /// pinned table versions. Takes no service latches; any number of threads
  /// may read one snapshot concurrently.
  Result<Table> Select(const std::string& sql, const ServiceSnapshot& snapshot);

  /// Replaces the service's catalog, database and view registry wholesale
  /// (e.g. with a pre-built workload) and clears the plan cache.
  Status Bootstrap(Catalog catalog, Database db, ViewRegistry views);

  ServiceStats Stats() const;
  void ResetStats();
  MetricsRegistry& metrics() { return metrics_; }

  /// Outcome of opening ServiceOptions::storage_path at construction: OK
  /// when storage is attached and recovery succeeded (or no path was
  /// configured). On failure the service still constructs — in-memory and
  /// empty — so the caller can inspect this, fix the cause (e.g. disarm an
  /// injected recovery fault) and build a fresh service to retry; recovery
  /// itself never writes, so retrying is always safe.
  Status storage_status() const { return storage_status_; }

  /// True when a durable storage engine is attached and healthy.
  bool storage_attached() const { return storage_ != nullptr; }

  /// Prometheus text exposition of the service metrics (also available as
  /// the STATS PROM statement). Point-in-time gauges (plan-cache size /
  /// capacity) are refreshed on each call.
  std::string StatsPromText();

  /// Snapshot of the slow-query log, oldest first (see
  /// ServiceOptions::slow_query_micros and the SLOWLOG statement).
  std::vector<SlowQueryRecord> SlowQueries() const;

  /// The time-series recorder behind STATS HISTORY / MONITOR. Always
  /// constructed; its background thread runs only when
  /// ServiceOptions::telemetry_interval_micros is nonzero.
  TelemetryRecorder& telemetry() { return *telemetry_; }

  /// Per-fingerprint cost-attribution aggregates, heaviest total wall time
  /// first — the advisor's ranking signal (also STATS ATTRIBUTION).
  std::vector<FingerprintProfile> FingerprintProfiles() const;

 private:
  Result<StatementResult> Dispatch(const std::string& stmt,
                                   const std::string& upper);

  // Row-read statements: ddl shared + footprint stripes shared.
  Result<StatementResult> HandleSelect(const std::string& stmt);
  Result<StatementResult> HandleExplain(const std::string& select_stmt);
  Result<StatementResult> HandleExplainAnalyze(const std::string& select_stmt);
  Result<StatementResult> HandleTrace(const std::string& stmt);
  Result<StatementResult> HandleFailpoint(const std::string& stmt);
  Result<StatementResult> HandleSlowLog() const;
  /// STATS HISTORY [JSON] [n]: the last n telemetry windows (default all),
  /// oldest first, as a text table or the JSON artifact.
  Result<StatementResult> HandleStatsHistory(const std::string& rest);
  /// MONITOR [n]: cuts a window now and renders a dashboard over the last
  /// n windows (throughput, cache hit rate, latency means, WAL activity).
  Result<StatementResult> HandleMonitor(const std::string& rest);
  /// STATS ATTRIBUTION [n]: top-n per-fingerprint cost aggregates.
  Result<StatementResult> HandleAttribution(const std::string& rest) const;
  Result<StatementResult> HandleWhy(const std::string& rest);
  Result<StatementResult> HandleSave(const std::string& stmt);
  Result<StatementResult> HandleListTables();
  Result<StatementResult> HandleListViews();

  // Row-write statements: ddl shared + written stripes (and those of every
  // dependent materialized view) exclusive.
  Result<StatementResult> HandleInsert(const std::string& stmt);
  /// DELETE FROM t [WHERE ...]: the predicate is evaluated against the
  /// current epoch *inside* the write latches (so the matched multiset is
  /// exactly what the delta removes), then the delete delta rides the same
  /// transactional path as INSERT. Inside BEGIN WRITE the rows matching the
  /// committed state are buffered into the batch instead.
  Result<StatementResult> HandleDelete(const std::string& stmt);
  /// UPDATE t SET col = expr, ... [WHERE ...]: materialized as a
  /// delete+insert delta (old rows out, transformed rows in), published at
  /// one epoch like every other write.
  Result<StatementResult> HandleUpdate(const std::string& stmt);
  Result<StatementResult> HandleRefresh(const std::string& name);

  /// CHECKPOINT: flushes a full shadow-paged checkpoint and truncates the
  /// WAL, under the exclusive ddl latch (the engine requires a quiesced
  /// database so the captured commit sequence matches the captured data).
  Result<StatementResult> HandleCheckpoint();

  /// SCRUB: re-verifies every live checkpoint page's checksum straight from
  /// disk plus the WAL framing, and reports per-table health alongside the
  /// current quarantine set. Reporting only — data-page rot in the
  /// checkpoint heals at the next CHECKPOINT (pages are rewritten from the
  /// live in-memory copy), so SCRUB recommends rather than quarantines.
  Result<StatementResult> HandleScrub();

  /// Background auto-checkpoint loop (storage attached only): polls
  /// StorageEngine::NeedsAutoCheckpoint, quiesces under the exclusive ddl
  /// latch and checkpoints. `checkpoint.auto` fires per attempt, so chaos
  /// runs can error or kill exactly at the trigger point.
  void AutoCheckpointLoop();

  /// Bounded writer stall while the WAL sits over the backpressure cap:
  /// sleeps (kicking the checkpointer) until the cap clears or the deadline
  /// passes, then returns a clean SERVER_BUSY-style kUnavailable. Called
  /// before any latch is taken — stalling while holding stripes would
  /// deadlock against the checkpointer's exclusive ddl acquisition.
  Status WaitOutBackpressure();

  /// kUnavailable with the stored reason if any of `names` is quarantined.
  Status CheckTableQuarantine(const std::vector<std::string>& names) const;

  /// Repair hook: a LOAD that fully replaced `name` lifts its quarantine,
  /// and any dependent view whose closure no longer touches a quarantined
  /// base table re-enters service (its contents were just recomputed).
  /// Every lift is mirrored into the engine's persisted quarantine map.
  /// Returns true when `name` itself was quarantined — the caller must then
  /// checkpoint, or the repair dies with the process (recovery re-derives
  /// the quarantine from the still-corrupt pages and discards the repair
  /// delta as suspect). Caller holds the ddl latch (any mode) — views_ is
  /// read.
  bool ClearTableQuarantine(const std::string& name);

  /// Current table quarantine, name-sorted, for STATS/SCRUB.
  std::vector<std::pair<std::string, std::string>> QuarantinedTables() const;

  /// Opens ServiceOptions::storage_path and installs the recovered state:
  /// catalog, views, base tables, surviving view contents (stale ones
  /// recomputed upstream-first), and the persisted plan cache when the
  /// schema versions still match. Called from the constructor only.
  Status AttachStorage();

  /// Auto-checkpoint after a schema change (storage attached only): the WAL
  /// logs row deltas, not DDL, so durability of CREATE TABLE / CREATE VIEW /
  /// LOAD-new-table / Bootstrap comes from checkpointing at the DDL point.
  /// Caller must hold the exclusive ddl latch.
  Status CheckpointIfDurable();

  /// The plan cache as storage images (LRU first; see PlanCache::Snapshot).
  std::vector<PlanImage> CollectPlanImages() const;

  /// What one ApplyWriteDelta call changed, for acks and metrics. Inserted
  /// and deleted rows are counted separately (an UPDATE of n rows is n
  /// deletes plus n inserts); `rows` keeps the combined total for callers
  /// that only want magnitude.
  struct WriteApplied {
    size_t rows = 0;              // rows_inserted + rows_deleted
    size_t rows_inserted = 0;     // rows added across all tables
    size_t rows_deleted = 0;      // rows removed across all tables
    size_t tables = 0;            // base tables written
    size_t views_maintained = 0;  // dependents folded incrementally
    size_t views_recomputed = 0;  // dependents fully recomputed (fallback)
  };

  /// A DML mutation whose delta must be materialized *inside* the write
  /// latches: the WHERE predicate is evaluated against the then-current
  /// table version, so the matched multiset cannot race a concurrent write.
  struct Mutation {
    enum class Kind { kDelete, kUpdate };
    Kind kind = Kind::kDelete;
    std::string table;
    std::vector<Predicate> where;    // empty = all rows
    std::vector<Assignment> sets;    // kUpdate only
  };

  /// The transactional write path shared by single-statement INSERT and
  /// BEGIN WRITE..COMMIT: validates the delta, grows the latch footprint to
  /// every dependent materialized view, copies each written base table once
  /// (however many rows the delta carries), brings every dependent view
  /// up to date — incrementally via IncrementalMaintainer where the view
  /// shape allows, by full recompute otherwise — and publishes base tables
  /// plus views as ONE COW version swap at a single epoch (Database::PutAll),
  /// so snapshot readers never observe a table/view mismatch. Any failure
  /// before the swap leaves the published state untouched.
  Result<WriteApplied> ApplyWriteDelta(const Delta& delta,
                                       QueryStats* stats = nullptr);

  /// ApplyWriteDelta's general form: when `mutation` is non-null, its WHERE
  /// is evaluated under the acquired write latches to materialize the
  /// delete (+ insert, for UPDATE) delta, which then flows through the same
  /// validate/maintain/log/publish sequence as `delta`. Exactly one of
  /// `delta`-with-rows or `mutation` is the payload.
  Result<WriteApplied> ApplyWrite(const Delta& delta, const Mutation* mutation,
                                  QueryStats* stats);

  /// Evaluates `mutation` against the table version in `db` (no latches
  /// taken — the caller either holds them or reads committed state for
  /// batch buffering). Returns the delete/insert delta plus the matched-row
  /// count via `matched`.
  Result<Delta> MaterializeMutation(const Mutation& mutation,
                                    const Database& db, size_t* matched) const;

  /// Post-parse tail shared by HandleDelete/HandleUpdate: either buffers
  /// the mutation's delta into the thread's open BEGIN WRITE batch
  /// (evaluated against committed state, like SELECT inside a batch) or
  /// runs it through ApplyWrite, with phase accounting into `qs`.
  Result<StatementResult> ExecuteMutation(Mutation mutation, QueryStats* qs);

  /// A materialized view whose stored contents must follow writes to any
  /// table in `closure`.
  struct DependentView {
    std::string name;
    std::vector<std::string> closure;  // the view's transitive FROM closure
  };

  /// Materialized (stored) views whose definition closure touches any of
  /// `tables`, ordered upstream-first so views defined over other dependent
  /// views refresh after their inputs. Caller holds the ddl latch.
  Result<std::vector<DependentView>> DependentViewsOf(
      const std::vector<std::string>& tables) const;

  /// Recomputes `name`'s definition against `staging` (which holds the
  /// post-write base tables and any already-refreshed upstream views) and
  /// stores the result there. Caller holds latches covering the recompute.
  Status RecomputeViewInto(const std::string& name, Database* staging);
  // Schema-change statements: ddl exclusive (LOAD only when the table is new).
  Result<StatementResult> HandleCreateTable(const std::string& stmt);
  Result<StatementResult> HandleCreateView(const std::string& stmt,
                                           bool materialized);
  Result<StatementResult> HandleLoad(const std::string& stmt);

  // Snapshot / write-batch statement dialect (per calling thread).
  Result<StatementResult> HandleBeginSnapshot();
  Result<StatementResult> HandleBeginWrite();
  Result<StatementResult> HandleCommit();
  Result<StatementResult> HandleRollback();
  /// The snapshot pinned by BEGIN SNAPSHOT on the calling thread, or null.
  ServiceSnapshotPtr ThreadSnapshot() const;
  /// True if the calling thread has an open BEGIN WRITE batch.
  bool ThreadHasWriteBatch() const;
  /// SELECT against `snap` with full metrics/slow-log accounting.
  Result<StatementResult> SelectOnSnapshot(const std::string& stmt,
                                           const ServiceSnapshot& snap);

  /// The latch footprint of `query`: its transitive FROM closure plus every
  /// materialized view the rewriter could substitute into it (and that
  /// view's own closure). Caller must hold the ddl latch (any mode) —
  /// catalog, views and database table-set are frozen while computing.
  std::vector<std::string> SelectFootprint(const Query& query) const;

  /// Optimizes `query` through the plan cache (lookup, else optimize and
  /// insert). Caller must hold the ddl latch shared plus the query's
  /// footprint stripes (at least shared). `optimize_micros` (optional)
  /// receives the optimizer wall time — 0 on a cache hit. `ctx` (optional)
  /// bounds candidate enumeration by the statement deadline. When the
  /// optimizer itself fails and degradation is enabled, returns an
  /// uncached entry holding the unrewritten query and sets `*degraded`.
  Result<PlanCache::EntryPtr> PlanThroughCache(
      const Query& query, bool* cache_hit,
      uint64_t* optimize_micros = nullptr, ExecContext* ctx = nullptr,
      bool* degraded = nullptr);

  /// Admission control (ServiceOptions::max_concurrent_statements): blocks
  /// up to admission_wait_micros for a slot, then kUnavailable.
  Status AdmitStatement();
  void ReleaseStatement();

  /// Bumps service.errors_total{code="<token>"} for a failed statement.
  void RecordError(const Status& status);

  /// Quarantine bookkeeping: failure charging, candidacy exclusion list
  /// (names over the threshold, sorted), and the REFRESH-time reset.
  void ChargeViewFailure(const std::string& view);
  std::vector<std::string> QuarantinedViews() const;
  void ClearViewFailures(const std::string& view);

  /// Appends to the bounded slow-query log (thread-safe).
  void RecordSlowQuery(SlowQueryRecord record);

  /// Folds one statement's QueryStats into its fingerprint aggregate
  /// (thread-safe; bounded by ServiceOptions::attribution_capacity).
  void RecordStatementProfile(const std::string& stmt, const QueryStats& qs);

  /// Builds the slow-log record for a statement from its attribution and
  /// appends it when over the threshold (no-op when slow_query_micros is 0
  /// or the statement was fast enough).
  void MaybeRecordSlowStatement(const std::string& stmt, const QueryStats& qs);

  /// Recomputes the named view's contents into db_. Caller holds latches
  /// covering the view (exclusive) and its dependencies (at least shared);
  /// fires the view's invalidation hook.
  Result<size_t> RefreshLatched(const std::string& name);

  ServiceOptions options_;

  /// Striped per-table latching over catalog_, db_ and views_ (see the
  /// class comment). The plan cache and metrics have their own internal
  /// synchronization and are safe under any latch mode; Database guards its
  /// own map structure, so snapshot reads need no service latch at all.
  mutable LatchManager latches_;
  Catalog catalog_;
  Database db_;
  ViewRegistry views_;

  PlanCache plan_cache_;

  /// Durable storage engine (null when ServiceOptions::storage_path is
  /// empty or opening it failed; see storage_status()). The engine carries
  /// its own mutex — LogCommit from disjoint-table writers is ordered
  /// there, under whatever stripes each writer holds.
  std::unique_ptr<StorageEngine> storage_;
  Status storage_status_;

  /// BEGIN SNAPSHOT bookkeeping: which threads have a pinned snapshot open.
  /// Entries are erased on COMMIT; a thread that exits without COMMIT leaks
  /// its (cheap, storage-sharing) pin until the service dies.
  mutable std::mutex snapshot_mutex_;
  std::unordered_map<std::thread::id, ServiceSnapshotPtr> thread_snapshots_;

  /// Bounded slow-query log; its own lock so recording never contends with
  /// the data latches.
  mutable std::mutex slow_log_mutex_;
  std::deque<SlowQueryRecord> slow_log_;

  /// Admission control state (its own lock, taken before any data latch and
  /// released by RAII in Execute, so a rejected or finished statement can
  /// never strand a slot).
  std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  size_t inflight_statements_ = 0;

  /// BEGIN WRITE bookkeeping: per-thread buffered deltas, applied atomically
  /// by COMMIT and discarded by ROLLBACK. Mutually exclusive with an open
  /// snapshot on the same thread.
  mutable std::mutex write_batch_mutex_;
  std::unordered_map<std::thread::id, Delta> write_batches_;

  /// Per-view rewrite-failure counts behind quarantine (own lock; touched
  /// only on failure paths, REFRESH, and the cooldown sweep). `quarantined_at`
  /// is the accepted-statement count when `failures` crossed the threshold;
  /// QuarantinedViews() lazily erases records whose cooldown has elapsed.
  struct ViewFailureRecord {
    uint32_t failures = 0;
    uint64_t quarantined_at = 0;  // 0 = not (yet) quarantined
  };
  mutable std::mutex quarantine_mutex_;
  mutable std::unordered_map<std::string, ViewFailureRecord> view_failures_;
  /// Tables (and dependent materialized views) whose durable state failed
  /// recovery's checksum/WAL validation, mapped to the reason. Reads and
  /// writes of these names error cleanly; LOAD replacement clears. Shares
  /// quarantine_mutex_ with the view-failure records above. In-memory only:
  /// quarantine is re-derived from the files at every recovery.
  std::map<std::string, std::string> table_quarantine_;

  /// Auto-checkpoint thread state: the thread runs only when storage is
  /// attached with a nonzero threshold; stop is flagged under the mutex and
  /// the condvar gives prompt shutdown and backpressure kicks.
  std::mutex checkpoint_mutex_;
  std::condition_variable checkpoint_cv_;
  bool stop_checkpointer_ = false;
  std::thread checkpointer_;

  /// Per-fingerprint cost attribution (own lock; one map update per SELECT,
  /// never under a data latch). Bounded by attribution_capacity; overflow
  /// fingerprints are counted, not tracked.
  mutable std::mutex profile_mutex_;
  std::unordered_map<uint64_t, FingerprintProfile> profiles_;
  uint64_t profile_overflow_ = 0;  // under profile_mutex_

  MetricsRegistry metrics_;
  Counter& statements_;
  Counter& queries_served_;
  Counter& cache_hits_;
  Counter& cache_misses_;
  Counter& cache_invalidated_;
  Counter& rewrites_applied_;
  Counter& rewrites_skipped_;
  Counter& slow_queries_;
  Counter& snapshots_pinned_;
  Counter& snapshot_reads_;
  Counter& admission_rejects_;
  Counter& degraded_fallbacks_;
  Counter& rows_inserted_;
  Counter& rows_deleted_;
  Counter& views_maintained_;
  Counter& views_recomputed_;
  Gauge& cache_size_gauge_;
  Gauge& cache_capacity_gauge_;
  LatencyHistogram& optimize_latency_;
  LatencyHistogram& exec_latency_;
  LatencyHistogram& maintain_latency_;

  /// Storage metric handles, valid only while storage_ is set (they live in
  /// metrics_ and are shared with the engine, which bumps them).
  Counter* storage_pages_read_ = nullptr;
  Counter* storage_pages_written_ = nullptr;
  Counter* storage_wal_bytes_ = nullptr;
  Counter* storage_wal_records_ = nullptr;
  Counter* storage_wal_fsyncs_ = nullptr;
  Counter* storage_checkpoints_ = nullptr;
  Counter* storage_wal_replayed_ = nullptr;
  Gauge* storage_recovery_ms_ = nullptr;
  Counter* storage_pool_hits_ = nullptr;
  Counter* storage_pool_misses_ = nullptr;
  LatencyHistogram* storage_fsync_latency_ = nullptr;
  LatencyHistogram* storage_checkpoint_latency_ = nullptr;
  Gauge* storage_recovery_replay_ms_ = nullptr;
  Gauge* storage_recovery_recompute_ms_ = nullptr;
  Gauge* storage_wal_size_ = nullptr;
  Counter* storage_auto_checkpoints_ = nullptr;
  Counter* storage_backpressure_waits_ = nullptr;
  LatencyHistogram* storage_group_batch_ = nullptr;
  Counter* storage_pages_quarantined_ = nullptr;

  /// Time-series recorder over metrics_ (always constructed; see
  /// ServiceOptions::telemetry_interval_micros). Declared after metrics_ so
  /// it is destroyed — and its sampler joined — before the registry.
  std::unique_ptr<TelemetryRecorder> telemetry_;
};

}  // namespace aqv

#endif  // AQV_SERVICE_QUERY_SERVICE_H_
