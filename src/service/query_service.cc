#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <utility>

#include "base/failpoint.h"
#include "base/strings.h"
#include "base/trace.h"
#include "exec/csv.h"
#include "exec/explain_plan.h"
#include "ir/fingerprint.h"
#include "ir/printer.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "rewrite/explain.h"
#include "rewrite/optimizer.h"

namespace aqv {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedMicros(Clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   Clock::now() - start)
                                   .count());
}

std::string TrimStatement(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  size_t e = s.find_last_not_of(" \t\r\n;");
  if (b == std::string::npos || e == std::string::npos || e < b) return "";
  return s.substr(b, e - b + 1);
}

}  // namespace

std::string ServiceStats::ToString() const {
  char buf[1280];
  std::snprintf(
      buf, sizeof(buf),
      "statements          %llu\n"
      "queries served      %llu\n"
      "plan cache          %llu hit / %llu miss (%.1f%% hit rate, "
      "%zu/%zu entries, %llu invalidated)\n"
      "rewrites            %llu applied / %llu skipped\n"
      "snapshots           %llu pinned / %llu reads\n"
      "latch stripes       %zu\n"
      "slow queries        %llu\n"
      "optimize latency    p50=%.1fus p99=%.1fus max=%lluus\n"
      "execute latency     p50=%.1fus p99=%.1fus max=%lluus\n",
      static_cast<unsigned long long>(statements),
      static_cast<unsigned long long>(queries_served),
      static_cast<unsigned long long>(plan_cache_hits),
      static_cast<unsigned long long>(plan_cache_misses),
      plan_cache_hit_rate * 100.0, plan_cache_size, plan_cache_capacity,
      static_cast<unsigned long long>(plan_cache_invalidated),
      static_cast<unsigned long long>(rewrites_applied),
      static_cast<unsigned long long>(rewrites_skipped),
      static_cast<unsigned long long>(snapshots_pinned),
      static_cast<unsigned long long>(snapshot_reads), latch_stripes,
      static_cast<unsigned long long>(slow_queries), optimize_p50_micros,
      optimize_p99_micros,
      static_cast<unsigned long long>(optimize_max_micros), exec_p50_micros,
      exec_p99_micros, static_cast<unsigned long long>(exec_max_micros));
  std::string out = buf;
  out += "admission rejects   " + std::to_string(admission_rejects) + "\n";
  out += "degraded fallbacks  " + std::to_string(degraded_fallbacks) + "\n";
  if (!errors_by_code.empty()) {
    out += "errors              ";
    for (size_t i = 0; i < errors_by_code.size(); ++i) {
      if (i > 0) out += " ";
      out += errors_by_code[i].first + "=" +
             std::to_string(errors_by_code[i].second);
    }
    out += "\n";
  }
  if (!quarantined_views.empty()) {
    out += "quarantined views   " + Join(quarantined_views, ", ") + "\n";
  }
  return out;
}

QueryService::QueryService(ServiceOptions options)
    : options_(options),
      latches_(options.latch_stripes),
      plan_cache_(options.enable_plan_cache ? options.plan_cache_capacity : 0),
      statements_(metrics_.GetCounter("service.statements")),
      queries_served_(metrics_.GetCounter("service.queries_served")),
      cache_hits_(metrics_.GetCounter("service.plan_cache.hits")),
      cache_misses_(metrics_.GetCounter("service.plan_cache.misses")),
      cache_invalidated_(metrics_.GetCounter("service.plan_cache.invalidated")),
      rewrites_applied_(metrics_.GetCounter("service.rewrites.applied")),
      rewrites_skipped_(metrics_.GetCounter("service.rewrites.skipped")),
      slow_queries_(metrics_.GetCounter("service.slow_queries")),
      snapshots_pinned_(metrics_.GetCounter("service.snapshots.pinned")),
      snapshot_reads_(metrics_.GetCounter("service.snapshots.reads")),
      admission_rejects_(metrics_.GetCounter("service.admission_rejects_total")),
      degraded_fallbacks_(
          metrics_.GetCounter("service.degraded_fallbacks_total")),
      cache_size_gauge_(metrics_.GetGauge("service.plan_cache.size")),
      cache_capacity_gauge_(metrics_.GetGauge("service.plan_cache.capacity")),
      optimize_latency_(metrics_.GetHistogram("service.optimize_latency")),
      exec_latency_(metrics_.GetHistogram("service.exec_latency")) {
  cache_capacity_gauge_.Set(static_cast<int64_t>(plan_cache_.capacity()));
}

namespace {

/// True for introspection statements that bypass admission control: an
/// operator must be able to inspect (and disarm failpoints on) a server
/// that is rejecting data statements as busy.
bool IsControlStatement(const std::string& upper) {
  return upper == "STATS" || upper == "STATS PROM" || upper == "SLOWLOG" ||
         upper == "TABLES" || upper == "VIEWS" || upper == "COMMIT" ||
         StartsWith(upper, "TRACE") || StartsWith(upper, "FAILPOINT");
}

}  // namespace

Result<StatementResult> QueryService::Execute(const std::string& statement) {
  if (options_.max_statement_bytes > 0 &&
      statement.size() > options_.max_statement_bytes) {
    Status overlong = Status::InvalidArgument(
        "statement is " + std::to_string(statement.size()) +
        " bytes, over the " + std::to_string(options_.max_statement_bytes) +
        "-byte limit");
    RecordError(overlong);
    return overlong;
  }
  std::string stmt = TrimStatement(statement);
  if (stmt.empty() || stmt[0] == '#') return StatementResult{};
  statements_.Increment();
  std::string upper = ToUpper(stmt);
  const bool admitted = !IsControlStatement(upper);
  if (admitted) {
    Status slot = AdmitStatement();
    if (!slot.ok()) {
      RecordError(slot);
      return slot;
    }
  }
  Result<StatementResult> result = [&]() -> Result<StatementResult> {
    // Root span of the statement lifecycle: parse/bind, latch acquisition,
    // rewrite enumeration, costing, cache lookup and execution nest under it.
    TraceSpan span("statement");
    if (span.active()) {
      span.AddAttr("sql", stmt.size() <= 120 ? stmt : stmt.substr(0, 120));
    }
    return Dispatch(stmt, upper);
  }();
  if (admitted) ReleaseStatement();
  if (!result.ok()) RecordError(result.status());
  return result;
}

Status QueryService::AdmitStatement() {
  if (options_.max_concurrent_statements == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(admission_mutex_);
  auto has_slot = [this] {
    return inflight_statements_ < options_.max_concurrent_statements;
  };
  if (!has_slot() &&
      !admission_cv_.wait_for(
          lock, std::chrono::microseconds(options_.admission_wait_micros),
          has_slot)) {
    admission_rejects_.Increment();
    return Status::Unavailable(
        "SERVER_BUSY: " + std::to_string(inflight_statements_) +
        " statement(s) in flight (limit " +
        std::to_string(options_.max_concurrent_statements) + "); retry later");
  }
  ++inflight_statements_;
  return Status::OK();
}

void QueryService::ReleaseStatement() {
  if (options_.max_concurrent_statements == 0) return;
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    --inflight_statements_;
  }
  admission_cv_.notify_one();
}

void QueryService::RecordError(const Status& status) {
  if (status.ok()) return;
  std::string code = StatusCodeToString(status.code());
  for (char& c : code) {
    if (c == ' ') c = '_';
  }
  metrics_.GetCounter("service.errors_total{code=\"" + code + "\"}")
      .Increment();
}

void QueryService::ChargeViewFailure(const std::string& view) {
  if (options_.view_quarantine_threshold == 0) return;
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  ++view_failures_[view];
}

std::vector<std::string> QueryService::QuarantinedViews() const {
  std::vector<std::string> out;
  if (options_.view_quarantine_threshold == 0) return out;
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  for (const auto& [name, failures] : view_failures_) {
    if (failures >= options_.view_quarantine_threshold) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void QueryService::ClearViewFailures(const std::string& view) {
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  view_failures_.erase(view);
}

Result<Table> QueryService::Select(const std::string& sql) {
  AQV_ASSIGN_OR_RETURN(StatementResult result, Execute(sql));
  if (!result.table.has_value()) {
    return Status::InvalidArgument("not a SELECT statement: " + sql);
  }
  return *std::move(result.table);
}

ServiceSnapshotPtr QueryService::PinSnapshot() {
  TraceSpan span("snapshot_pin");
  LatchManager::Guard guard = latches_.StatementShared();
  // Every stripe shared: waits out in-flight writers, so the version vector
  // copied below is a transactionally consistent cut across all tables.
  latches_.AcquireAllShared(&guard);
  auto snap = std::make_shared<ServiceSnapshot>();
  snap->catalog = catalog_;
  snap->views = views_;
  snap->db = db_.Snapshot();
  snap->epoch = snap->db.epoch();
  snapshots_pinned_.Increment();
  if (span.active()) {
    span.AddAttr("stripes", static_cast<uint64_t>(guard.stripes_held()));
    span.AddAttr("epoch", snap->epoch);
  }
  return snap;
}

Result<Table> QueryService::Select(const std::string& sql,
                                   const ServiceSnapshot& snapshot) {
  std::string stmt = TrimStatement(sql);
  if (stmt.empty()) {
    return Status::InvalidArgument("not a SELECT statement: " + sql);
  }
  statements_.Increment();
  TraceSpan span("statement");
  if (span.active()) {
    span.AddAttr("sql", stmt.size() <= 120 ? stmt : stmt.substr(0, 120));
  }
  AQV_ASSIGN_OR_RETURN(StatementResult result, SelectOnSnapshot(stmt, snapshot));
  if (!result.table.has_value()) {
    return Status::InvalidArgument("not a SELECT statement: " + sql);
  }
  return *std::move(result.table);
}

Status QueryService::Bootstrap(Catalog catalog, Database db,
                               ViewRegistry views) {
  LatchManager::Guard guard = latches_.Ddl();
  catalog_ = std::move(catalog);
  db_ = std::move(db);
  views_ = std::move(views);
  cache_invalidated_.Increment(plan_cache_.Clear());
  return Status::OK();
}

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  s.statements = statements_.value();
  s.queries_served = queries_served_.value();
  s.plan_cache_hits = cache_hits_.value();
  s.plan_cache_misses = cache_misses_.value();
  s.plan_cache_invalidated = cache_invalidated_.value();
  s.rewrites_applied = rewrites_applied_.value();
  s.rewrites_skipped = rewrites_skipped_.value();
  s.slow_queries = slow_queries_.value();
  s.snapshots_pinned = snapshots_pinned_.value();
  s.snapshot_reads = snapshot_reads_.value();
  s.admission_rejects = admission_rejects_.value();
  s.degraded_fallbacks = degraded_fallbacks_.value();
  const std::string kErrorPrefix = "service.errors_total{code=\"";
  for (auto& [name, value] : metrics_.CounterValues(kErrorPrefix)) {
    // Strip the family prefix and the trailing '"}' to recover the token.
    std::string code = name.substr(kErrorPrefix.size());
    if (code.size() >= 2) code.resize(code.size() - 2);
    s.errors_by_code.emplace_back(std::move(code), value);
  }
  s.quarantined_views = QuarantinedViews();
  s.plan_cache_size = plan_cache_.size();
  s.plan_cache_capacity = plan_cache_.capacity();
  s.latch_stripes = latches_.stripe_count();
  uint64_t lookups = s.plan_cache_hits + s.plan_cache_misses;
  s.plan_cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(s.plan_cache_hits) /
                         static_cast<double>(lookups);
  s.optimize_p50_micros = optimize_latency_.PercentileMicros(0.5);
  s.optimize_p99_micros = optimize_latency_.PercentileMicros(0.99);
  s.optimize_max_micros = optimize_latency_.max_micros();
  s.exec_p50_micros = exec_latency_.PercentileMicros(0.5);
  s.exec_p99_micros = exec_latency_.PercentileMicros(0.99);
  s.exec_max_micros = exec_latency_.max_micros();
  return s;
}

void QueryService::ResetStats() {
  metrics_.ResetAll();
  cache_capacity_gauge_.Set(static_cast<int64_t>(plan_cache_.capacity()));
  std::lock_guard<std::mutex> lock(slow_log_mutex_);
  slow_log_.clear();
}

std::string QueryService::StatsPromText() {
  cache_size_gauge_.Set(static_cast<int64_t>(plan_cache_.size()));
  return metrics_.PromText();
}

std::vector<SlowQueryRecord> QueryService::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_log_mutex_);
  return std::vector<SlowQueryRecord>(slow_log_.begin(), slow_log_.end());
}

void QueryService::RecordSlowQuery(SlowQueryRecord record) {
  slow_queries_.Increment();
  std::lock_guard<std::mutex> lock(slow_log_mutex_);
  slow_log_.push_back(std::move(record));
  while (slow_log_.size() > options_.slow_query_log_capacity &&
         !slow_log_.empty()) {
    slow_log_.pop_front();
  }
}

ServiceSnapshotPtr QueryService::ThreadSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  auto it = thread_snapshots_.find(std::this_thread::get_id());
  return it == thread_snapshots_.end() ? nullptr : it->second;
}

Result<StatementResult> QueryService::HandleBeginSnapshot() {
  std::thread::id tid = std::this_thread::get_id();
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    if (thread_snapshots_.count(tid) > 0) {
      return Status::InvalidArgument(
          "a snapshot is already open on this thread; COMMIT it first");
    }
  }
  ServiceSnapshotPtr snap = PinSnapshot();
  StatementResult out;
  out.message = "snapshot pinned at epoch " + std::to_string(snap->epoch) +
                " (" + std::to_string(snap->db.TableNames().size()) +
                " tables)\n";
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  thread_snapshots_[tid] = std::move(snap);
  return out;
}

Result<StatementResult> QueryService::HandleCommit() {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  auto it = thread_snapshots_.find(std::this_thread::get_id());
  if (it == thread_snapshots_.end()) {
    return Status::InvalidArgument(
        "no open snapshot on this thread (BEGIN SNAPSHOT first)");
  }
  uint64_t epoch = it->second->epoch;
  thread_snapshots_.erase(it);
  StatementResult out;
  out.message = "snapshot at epoch " + std::to_string(epoch) + " released\n";
  return out;
}

Result<StatementResult> QueryService::Dispatch(const std::string& stmt,
                                               const std::string& upper) {
  if (upper == "STATS PROM") {
    StatementResult out;
    out.message = StatsPromText();
    return out;
  }
  if (upper == "STATS") {
    StatementResult out;
    out.message = Stats().ToString();
    return out;
  }
  if (upper == "SLOWLOG") return HandleSlowLog();
  if (StartsWith(upper, "TRACE")) return HandleTrace(stmt);
  if (StartsWith(upper, "FAILPOINT")) return HandleFailpoint(stmt);
  if (upper == "BEGIN SNAPSHOT" || upper == "BEGIN") {
    return HandleBeginSnapshot();
  }
  if (upper == "COMMIT") return HandleCommit();
  if (upper == "TABLES") return HandleListTables();
  if (upper == "VIEWS") return HandleListViews();
  // Writes and DDL are rejected while the calling thread has an open
  // snapshot: the pin is read-only by construction.
  bool is_write = StartsWith(upper, "CREATE ") ||
                  StartsWith(upper, "INSERT INTO") ||
                  StartsWith(upper, "REFRESH") || StartsWith(upper, "LOAD");
  if (is_write && ThreadSnapshot() != nullptr) {
    return Status::InvalidArgument(
        "writes are not allowed inside BEGIN SNAPSHOT; COMMIT first");
  }
  if (StartsWith(upper, "CREATE TABLE")) return HandleCreateTable(stmt);
  if (StartsWith(upper, "CREATE MATERIALIZED VIEW")) {
    return HandleCreateView(
        "CREATE " + stmt.substr(std::string("CREATE MATERIALIZED ").size()),
        /*materialized=*/true);
  }
  if (StartsWith(upper, "CREATE VIEW")) {
    return HandleCreateView(stmt, /*materialized=*/false);
  }
  if (StartsWith(upper, "INSERT INTO")) return HandleInsert(stmt);
  if (StartsWith(upper, "REFRESH")) {
    return HandleRefresh(TrimStatement(stmt.substr(7)));
  }
  if (StartsWith(upper, "EXPLAIN ANALYZE")) {
    return HandleExplainAnalyze(TrimStatement(stmt.substr(15)));
  }
  if (StartsWith(upper, "EXPLAIN")) {
    return HandleExplain(TrimStatement(stmt.substr(7)));
  }
  if (StartsWith(upper, "WHY")) return HandleWhy(TrimStatement(stmt.substr(3)));
  if (StartsWith(upper, "SELECT")) return HandleSelect(stmt);
  if (StartsWith(upper, "LOAD")) return HandleLoad(stmt);
  if (StartsWith(upper, "SAVE")) return HandleSave(stmt);
  return Status::InvalidArgument("unrecognized statement: " + stmt);
}

std::vector<std::string> QueryService::SelectFootprint(
    const Query& query) const {
  std::vector<std::string> deps;
  CollectQueryDependencies(query, views_, &deps);
  // Base-table leaves of the query's closure.
  std::vector<std::string> base;
  for (const std::string& n : deps) {
    if (!views_.Has(n)) base.push_back(n);
  }
  // The rewriter can only substitute a materialized view whose base tables
  // all appear among the query's; include each such view's whole closure so
  // a cached plan's dependency set — closure(original) ∪ closure(chosen) —
  // is always covered by the held stripes, whatever plan wins.
  for (const std::string& view : views_.ViewNames()) {
    if (!db_.Has(view)) continue;
    std::vector<std::string> closure;
    CollectDependencies({view}, views_, &closure);
    bool subset = true;
    for (const std::string& n : closure) {
      if (views_.Has(n)) continue;
      if (std::find(base.begin(), base.end(), n) == base.end()) {
        subset = false;
        break;
      }
    }
    if (subset) deps.insert(deps.end(), closure.begin(), closure.end());
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

Result<PlanCache::EntryPtr> QueryService::PlanThroughCache(
    const Query& query, bool* cache_hit, uint64_t* optimize_micros,
    ExecContext* ctx, bool* degraded) {
  *cache_hit = false;
  if (optimize_micros != nullptr) *optimize_micros = 0;
  std::string key;
  if (options_.enable_plan_cache) {
    TraceSpan lookup("plan_cache.lookup");
    key = CanonicalCacheKey(query);
    PlanCache::EntryPtr cached = plan_cache_.Lookup(key);
    if (lookup.active()) lookup.AddAttr("hit", cached ? "1" : "0");
    if (cached) {
      *cache_hit = true;
      cache_hits_.Increment();
      return cached;
    }
  }
  Clock::time_point start = Clock::now();
  RewriteOptions rewrite = options_.rewrite;
  rewrite.quarantined_views = QuarantinedViews();
  Optimizer optimizer(&db_, &views_, &catalog_, rewrite);
  Result<OptimizeResult> optimized = optimizer.Optimize(query, ctx);
  uint64_t elapsed = ElapsedMicros(start);
  if (optimize_micros != nullptr) *optimize_micros = elapsed;
  optimize_latency_.Record(elapsed);
  cache_misses_.Increment();

  auto entry = std::make_shared<PlanCache::Entry>();
  if (!optimized.ok()) {
    const Status& s = optimized.status();
    bool resource = s.code() == StatusCode::kDeadlineExceeded ||
                    s.code() == StatusCode::kResourceExhausted;
    if (resource || !options_.degrade_on_failure) return s;
    // Degrade: the optimizer itself failed (e.g. an injected
    // "optimizer.optimize" fault), so serve the unrewritten query. The
    // entry is NOT inserted into the cache — the next statement gets a
    // fresh optimization attempt rather than a pinned degraded plan.
    degraded_fallbacks_.Increment();
    if (degraded != nullptr) *degraded = true;
    entry->plan = query;
    CollectQueryDependencies(query, views_, &entry->dependencies);
    std::sort(entry->dependencies.begin(), entry->dependencies.end());
    entry->dependencies.erase(
        std::unique(entry->dependencies.begin(), entry->dependencies.end()),
        entry->dependencies.end());
    return PlanCache::EntryPtr(std::move(entry));
  }
  OptimizeResult plan = *std::move(optimized);
  // Views skipped for per-view rewrite failures count toward quarantine.
  for (const std::string& view : plan.failed_views) ChargeViewFailure(view);
  entry->plan = std::move(plan.chosen);
  entry->used_materialized_view = plan.used_materialized_view;
  entry->rewritings_considered = plan.rewritings_considered;
  entry->cost_original = plan.cost_original;
  entry->cost_chosen = plan.cost_chosen;
  entry->dependencies = std::move(plan.dependencies);
  // Inserted while still holding the footprint stripes shared (see the class
  // comment): the entry's dependencies are a subset of the footprint, so a
  // writer's invalidation — which needs the written stripe exclusive —
  // cannot interleave between optimize and insert.
  if (options_.enable_plan_cache) plan_cache_.Insert(key, entry);
  return PlanCache::EntryPtr(std::move(entry));
}

Result<StatementResult> QueryService::SelectOnSnapshot(
    const std::string& stmt, const ServiceSnapshot& snap) {
  Clock::time_point stmt_start = Clock::now();
  ExecContext ctx;
  if (options_.statement_deadline_micros > 0) {
    ctx.set_deadline_after_micros(options_.statement_deadline_micros);
  }
  if (options_.statement_row_budget > 0) {
    ctx.set_row_budget(options_.statement_row_budget);
  }
  TraceSpan span("snapshot_read");
  if (span.active()) span.AddAttr("epoch", snap.epoch);
  AQV_ASSIGN_OR_RETURN(Query query, ParseQuery(stmt, &snap.catalog));
  uint64_t parse_micros = ElapsedMicros(stmt_start);
  StatementResult out;
  // Always a fresh optimize: the plan cache tracks current state (and its
  // invalidation hooks fire on current-state writes), not the pinned epoch.
  Clock::time_point opt_start = Clock::now();
  Optimizer optimizer(&snap.db, &snap.views, &snap.catalog, options_.rewrite);
  Result<OptimizeResult> optimized = optimizer.Optimize(query, &ctx);
  OptimizeResult plan;
  if (optimized.ok()) {
    plan = *std::move(optimized);
  } else {
    const Status& s = optimized.status();
    bool resource = s.code() == StatusCode::kDeadlineExceeded ||
                    s.code() == StatusCode::kResourceExhausted;
    if (resource || !options_.degrade_on_failure) return s;
    // Degrade: serve the unrewritten query against the snapshot.
    degraded_fallbacks_.Increment();
    out.degraded = true;
    plan.chosen = query;
  }
  uint64_t optimize_micros = ElapsedMicros(opt_start);
  optimize_latency_.Record(optimize_micros);
  out.used_materialized_view = plan.used_materialized_view;
  if (plan.used_materialized_view) {
    out.message = "-- rewritten to use a materialized view:\n--   " +
                  ToSql(plan.chosen) + "\n";
    rewrites_applied_.Increment();
  } else {
    rewrites_skipped_.Increment();
  }
  Clock::time_point start = Clock::now();
  uint64_t exec_micros = 0;
  {
    TraceSpan exec_span("execute");
    Evaluator eval(&snap.db, &snap.views, options_.eval);
    eval.set_context(&ctx);
    Result<Table> result = eval.Execute(plan.chosen);
    if (!result.ok()) {
      const Status& s = result.status();
      bool resource = s.code() == StatusCode::kDeadlineExceeded ||
                      s.code() == StatusCode::kResourceExhausted;
      if (resource || !options_.degrade_on_failure ||
          !plan.used_materialized_view) {
        return s;
      }
      degraded_fallbacks_.Increment();
      ctx.ResetForRetry();
      Evaluator retry(&snap.db, &snap.views, options_.eval);
      retry.set_context(&ctx);
      result = retry.Execute(query);
      AQV_RETURN_NOT_OK(result.status());
      out.degraded = true;
      out.used_materialized_view = false;
      out.message += "-- degraded: plan failed (" + s.ToString() +
                     "); retried on the unrewritten query\n";
    }
    exec_micros = ElapsedMicros(start);
    if (exec_span.active()) exec_span.AddAttr("rows", result->num_rows());
    out.table = *std::move(result);
  }
  exec_latency_.Record(exec_micros);
  queries_served_.Increment();
  snapshot_reads_.Increment();
  uint64_t total_micros = ElapsedMicros(stmt_start);
  if (options_.slow_query_micros > 0 &&
      total_micros >= options_.slow_query_micros) {
    SlowQueryRecord record;
    record.statement = stmt;
    record.fingerprint = QueryFingerprint(query);
    record.parse_micros = parse_micros;
    record.optimize_micros = optimize_micros;
    record.exec_micros = exec_micros;
    record.total_micros = total_micros;
    record.cache_hit = false;
    RecordSlowQuery(std::move(record));
  }
  return out;
}

Result<StatementResult> QueryService::HandleSelect(const std::string& stmt) {
  if (ServiceSnapshotPtr snap = ThreadSnapshot()) {
    return SelectOnSnapshot(stmt, *snap);
  }
  Clock::time_point stmt_start = Clock::now();
  // The statement's governance context: the deadline covers parse through
  // execution (including a degraded retry); the row budget is per
  // execution attempt.
  ExecContext ctx;
  if (options_.statement_deadline_micros > 0) {
    ctx.set_deadline_after_micros(options_.statement_deadline_micros);
  }
  if (options_.statement_row_budget > 0) {
    ctx.set_row_budget(options_.statement_row_budget);
  }
  LatchManager::Guard guard = latches_.StatementShared();
  AQV_ASSIGN_OR_RETURN(Query query, ParseQuery(stmt, &catalog_));
  uint64_t parse_micros = ElapsedMicros(stmt_start);
  {
    TraceSpan latch_span("latch");
    latches_.AcquireShared(&guard, SelectFootprint(query));
    if (latch_span.active()) {
      latch_span.AddAttr("stripes", static_cast<uint64_t>(guard.stripes_held()));
      latch_span.AddAttr("epoch", db_.epoch());
    }
  }
  StatementResult out;
  uint64_t optimize_micros = 0;
  AQV_ASSIGN_OR_RETURN(
      PlanCache::EntryPtr entry,
      PlanThroughCache(query, &out.cache_hit, &optimize_micros, &ctx,
                       &out.degraded));
  out.used_materialized_view = entry->used_materialized_view;
  if (entry->used_materialized_view) {
    out.message = "-- rewritten to use a materialized view:\n--   " +
                  ToSql(entry->plan) + "\n";
    rewrites_applied_.Increment();
  } else {
    rewrites_skipped_.Increment();
  }
  Clock::time_point start = Clock::now();
  uint64_t exec_micros = 0;
  {
    TraceSpan exec_span("execute");
    Evaluator eval(&db_, &views_, options_.eval);
    eval.set_context(&ctx);
    Result<Table> result = eval.Execute(entry->plan);
    if (!result.ok()) {
      const Status& s = result.status();
      bool resource = s.code() == StatusCode::kDeadlineExceeded ||
                      s.code() == StatusCode::kResourceExhausted;
      // A tripped deadline/budget is the governance verdict, not a plan
      // defect — surface it as-is (the RAII latch guard releases
      // everything). A real failure of a rewritten or cached plan degrades:
      // drop the cached entry, charge its views toward quarantine and retry
      // once on the unrewritten query under the same deadline.
      bool plan_differs = entry->used_materialized_view || out.cache_hit;
      if (resource || !options_.degrade_on_failure || !plan_differs) {
        return s;
      }
      if (options_.enable_plan_cache) {
        cache_invalidated_.Increment(
            plan_cache_.Erase(CanonicalCacheKey(query)));
      }
      for (const TableRef& ref : entry->plan.from) {
        if (views_.Has(ref.table)) ChargeViewFailure(ref.table);
      }
      degraded_fallbacks_.Increment();
      ctx.ResetForRetry();
      Evaluator retry(&db_, &views_, options_.eval);
      retry.set_context(&ctx);
      result = retry.Execute(query);
      AQV_RETURN_NOT_OK(result.status());
      out.degraded = true;
      out.used_materialized_view = false;
      out.message += "-- degraded: plan failed (" + s.ToString() +
                     "); retried on the unrewritten query\n";
    }
    exec_micros = ElapsedMicros(start);
    if (exec_span.active()) exec_span.AddAttr("rows", result->num_rows());
    out.table = *std::move(result);
  }
  exec_latency_.Record(exec_micros);
  queries_served_.Increment();
  uint64_t total_micros = ElapsedMicros(stmt_start);
  if (options_.slow_query_micros > 0 &&
      total_micros >= options_.slow_query_micros) {
    SlowQueryRecord record;
    record.statement = stmt;
    record.fingerprint = QueryFingerprint(query);
    record.parse_micros = parse_micros;
    record.optimize_micros = optimize_micros;
    record.exec_micros = exec_micros;
    record.total_micros = total_micros;
    record.cache_hit = out.cache_hit;
    RecordSlowQuery(std::move(record));
  }
  return out;
}

Result<StatementResult> QueryService::HandleExplain(
    const std::string& select_stmt) {
  LatchManager::Guard guard = latches_.StatementShared();
  AQV_ASSIGN_OR_RETURN(Query query, ParseQuery(select_stmt, &catalog_));
  latches_.AcquireShared(&guard, SelectFootprint(query));
  StatementResult out;
  AQV_ASSIGN_OR_RETURN(PlanCache::EntryPtr entry,
                       PlanThroughCache(query, &out.cache_hit));
  out.used_materialized_view = entry->used_materialized_view;
  char buf[256];
  out.message = "original:  " + ToSql(query) + "\n";
  out.message += "chosen:    " + ToSql(entry->plan) + "\n";
  std::snprintf(buf, sizeof(buf),
                "cost:      %.0f -> %.0f (%d rewriting(s) considered%s)\n",
                entry->cost_original, entry->cost_chosen,
                entry->rewritings_considered,
                out.cache_hit ? ", plan cache hit" : "");
  out.message += buf;
  AQV_ASSIGN_OR_RETURN(std::string tree,
                       ExplainPlan(entry->plan, db_, &views_));
  out.message += tree;
  return out;
}

Result<StatementResult> QueryService::HandleExplainAnalyze(
    const std::string& select_stmt) {
  LatchManager::Guard guard = latches_.StatementShared();
  AQV_ASSIGN_OR_RETURN(Query query, ParseQuery(select_stmt, &catalog_));
  latches_.AcquireShared(&guard, SelectFootprint(query));
  StatementResult out;
  AQV_ASSIGN_OR_RETURN(PlanCache::EntryPtr entry,
                       PlanThroughCache(query, &out.cache_hit));
  out.used_materialized_view = entry->used_materialized_view;
  char buf[256];
  out.message = "original:  " + ToSql(query) + "\n";
  out.message += "chosen:    " + ToSql(entry->plan) + "\n";
  std::snprintf(buf, sizeof(buf),
                "cost:      %.0f -> %.0f (%d rewriting(s) considered%s)\n",
                entry->cost_original, entry->cost_chosen,
                entry->rewritings_considered,
                out.cache_hit ? ", plan cache hit" : "");
  out.message += buf;
  // Execute the chosen plan with the per-operator profile attached; the
  // rendered tree shows actual rows and wall time next to the stored
  // cardinalities the cost model estimated from.
  PlanProfile profile;
  Clock::time_point start = Clock::now();
  Evaluator eval(&db_, &views_, options_.eval);
  eval.set_profile(&profile);
  AQV_ASSIGN_OR_RETURN(Table result, eval.Execute(entry->plan));
  exec_latency_.Record(ElapsedMicros(start));
  queries_served_.Increment();
  out.message += RenderAnalyzedPlan(profile);
  out.message +=
      "result: " + std::to_string(result.num_rows()) + " row(s)\n";
  return out;
}

Result<StatementResult> QueryService::HandleTrace(const std::string& stmt) {
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
  Tracer& tracer = Tracer::Global();
  StatementResult out;
  if (tokens.size() >= 2 && tokens[1].IsKeyword("ON")) {
    tracer.Enable();
    out.message = "tracing enabled\n";
    return out;
  }
  if (tokens.size() >= 2 && tokens[1].IsKeyword("OFF")) {
    tracer.Disable();
    out.message = "tracing disabled\n";
    return out;
  }
  if (tokens.size() >= 2 && tokens[1].IsKeyword("CLEAR")) {
    tracer.Clear();
    out.message = "trace buffer cleared\n";
    return out;
  }
  if (tokens.size() >= 2 && tokens[1].IsKeyword("DUMP")) {
    size_t events = tracer.Snapshot().size();
    uint64_t dropped = tracer.dropped();
    std::string json = tracer.ChromeTraceJson();
    if (tokens.size() >= 3 && tokens[2].kind == TokenKind::kString) {
      std::ofstream file(tokens[2].text, std::ios::trunc);
      if (!file) {
        return Status::InvalidArgument("cannot open '" + tokens[2].text +
                                       "' for writing");
      }
      file << json;
      out.message = std::to_string(events) + " event(s) written to " +
                    tokens[2].text + " (" + std::to_string(dropped) +
                    " dropped); load in chrome://tracing or ui.perfetto.dev\n";
    } else {
      out.message = std::move(json);
    }
    return out;
  }
  return Status::InvalidArgument("usage: TRACE ON|OFF|CLEAR|DUMP ['file.json']");
}

Result<StatementResult> QueryService::HandleFailpoint(const std::string& stmt) {
  // FAILPOINT LIST | FAILPOINT CLEAR | FAILPOINT <name> <spec>
  // (names and specs are case-sensitive; see base/failpoint.h for the
  // spec grammar).
  std::string rest = TrimStatement(stmt.substr(std::string("FAILPOINT").size()));
  std::string upper = ToUpper(rest);
  FailpointRegistry& registry = FailpointRegistry::Global();
  StatementResult out;
  if (rest.empty() || upper == "LIST") {
    std::vector<FailpointRegistry::Info> armed = registry.List();
    if (armed.empty()) {
      out.message = "no failpoints armed\n";
      return out;
    }
    for (const FailpointRegistry::Info& info : armed) {
      out.message += "  " + info.name + " " + info.spec + " (evaluated " +
                     std::to_string(info.evaluations) + ", fired " +
                     std::to_string(info.fires) + ")\n";
    }
    return out;
  }
  if (upper == "CLEAR") {
    registry.ClearAll();
    out.message = "all failpoints cleared\n";
    return out;
  }
  size_t space = rest.find_first_of(" \t");
  if (space == std::string::npos) {
    return Status::InvalidArgument(
        "usage: FAILPOINT <name> <spec> | FAILPOINT LIST | FAILPOINT CLEAR");
  }
  std::string name = rest.substr(0, space);
  std::string spec = TrimStatement(rest.substr(space));
  AQV_RETURN_NOT_OK(registry.Set(name, spec));
  out.message = "failpoint " + name + " = " + spec + "\n";
  return out;
}

Result<StatementResult> QueryService::HandleSlowLog() const {
  StatementResult out;
  std::vector<SlowQueryRecord> records = SlowQueries();
  if (records.empty()) {
    out.message = "slow query log is empty\n";
    return out;
  }
  char buf[160];
  for (const SlowQueryRecord& r : records) {
    std::snprintf(buf, sizeof(buf),
                  "fp=%016llx total=%lluus parse=%lluus optimize=%lluus "
                  "exec=%lluus%s  ",
                  static_cast<unsigned long long>(r.fingerprint),
                  static_cast<unsigned long long>(r.total_micros),
                  static_cast<unsigned long long>(r.parse_micros),
                  static_cast<unsigned long long>(r.optimize_micros),
                  static_cast<unsigned long long>(r.exec_micros),
                  r.cache_hit ? " [cache hit]" : "");
    out.message += buf;
    out.message += r.statement + "\n";
  }
  return out;
}

Result<StatementResult> QueryService::HandleWhy(const std::string& rest) {
  size_t space = rest.find(' ');
  if (space == std::string::npos) {
    return Status::InvalidArgument("usage: WHY <view> SELECT ...");
  }
  // No row data is read: the ddl latch (shared) freezes views_ and catalog_,
  // which is all the rewrite explanation needs.
  LatchManager::Guard guard = latches_.StatementShared();
  std::string name = rest.substr(0, space);
  AQV_ASSIGN_OR_RETURN(const ViewDef* view, views_.Get(name));
  AQV_ASSIGN_OR_RETURN(
      Query query, ParseQuery(TrimStatement(rest.substr(space + 1)), &catalog_));
  AQV_ASSIGN_OR_RETURN(RewriteExplanation explanation,
                       ExplainRewrite(query, *view, options_.rewrite));
  StatementResult out;
  out.message = explanation.ToString();
  return out;
}

Result<StatementResult> QueryService::HandleSave(const std::string& stmt) {
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
  if (tokens.size() < 4 || tokens[1].kind != TokenKind::kIdentifier ||
      !tokens[2].IsKeyword("TO") || tokens[3].kind != TokenKind::kString) {
    return Status::InvalidArgument("usage: SAVE R TO 'file.csv'");
  }
  LatchManager::Guard guard = latches_.StatementShared();
  std::vector<std::string> footprint;
  CollectDependencies({tokens[1].text}, views_, &footprint);
  latches_.AcquireShared(&guard, footprint);
  Evaluator eval(&db_, &views_);
  AQV_ASSIGN_OR_RETURN(Table contents, eval.MaterializeView(tokens[1].text));
  AQV_RETURN_NOT_OK(WriteCsvFile(contents, tokens[3].text));
  StatementResult out;
  out.message = std::to_string(contents.num_rows()) + " row(s) written to " +
                tokens[3].text + "\n";
  return out;
}

Result<StatementResult> QueryService::HandleListTables() {
  LatchManager::Guard guard = latches_.StatementShared();
  // All stripes shared: the row counts below come from one consistent cut.
  latches_.AcquireAllShared(&guard);
  StatementResult out;
  for (const std::string& name : catalog_.TableNames()) {
    const TableDef* def = *catalog_.GetTable(name);
    Result<const Table*> t = db_.Get(name);
    out.message += "  " + name + "(" + Join(def->columns(), ", ") + ") — " +
                   std::to_string(t.ok() ? (*t)->num_rows() : 0) + " rows\n";
  }
  return out;
}

Result<StatementResult> QueryService::HandleListViews() {
  LatchManager::Guard guard = latches_.StatementShared();
  StatementResult out;
  for (const std::string& name : views_.ViewNames()) {
    const ViewDef* def = *views_.Get(name);
    bool materialized = db_.Has(name);
    out.message += "  " + name + (materialized ? " [materialized] AS " : " [virtual] AS ") +
                   ToSql(def->query) + "\n";
  }
  return out;
}

Result<StatementResult> QueryService::HandleCreateTable(
    const std::string& stmt) {
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
  size_t i = 2;  // CREATE TABLE
  if (tokens[i].kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument("expected a table name");
  }
  std::string name = tokens[i++].text;
  if (tokens[i++].kind != TokenKind::kLParen) {
    return Status::InvalidArgument("expected '(' after the table name");
  }
  std::vector<std::string> columns;
  while (tokens[i].kind == TokenKind::kIdentifier) {
    columns.push_back(tokens[i++].text);
    if (tokens[i].kind == TokenKind::kComma) ++i;
  }
  if (tokens[i++].kind != TokenKind::kRParen) {
    return Status::InvalidArgument("expected ')' after the column list");
  }
  TableDef def(name, columns);
  if (tokens[i].IsKeyword("KEY")) {
    ++i;
    if (tokens[i++].kind != TokenKind::kLParen) {
      return Status::InvalidArgument("expected '(' after KEY");
    }
    std::vector<std::string> key;
    while (tokens[i].kind == TokenKind::kIdentifier) {
      key.push_back(tokens[i++].text);
      if (tokens[i].kind == TokenKind::kComma) ++i;
    }
    if (tokens[i++].kind != TokenKind::kRParen) {
      return Status::InvalidArgument("expected ')' after the key columns");
    }
    AQV_RETURN_NOT_OK(def.AddKeyByName(key));
  }
  LatchManager::Guard guard = latches_.Ddl();
  AQV_RETURN_NOT_OK(catalog_.AddTable(def));
  db_.Put(name, Table(columns));
  // DDL hook: a new table can change any optimizer choice; drop everything.
  cache_invalidated_.Increment(plan_cache_.Clear());
  StatementResult out;
  out.message = "table " + name + " created\n";
  return out;
}

Result<StatementResult> QueryService::HandleCreateView(const std::string& stmt,
                                                       bool materialized) {
  LatchManager::Guard guard = latches_.Ddl();
  AQV_ASSIGN_OR_RETURN(ViewDef view, ParseView(stmt, &catalog_));
  std::string name = view.name;
  AQV_RETURN_NOT_OK(views_.Register(std::move(view)));
  // DDL hook: a new view makes new rewritings possible for cached misses
  // and can flip cost decisions, so the whole cache goes.
  cache_invalidated_.Increment(plan_cache_.Clear());
  StatementResult out;
  if (materialized) {
    AQV_ASSIGN_OR_RETURN(size_t rows, RefreshLatched(name));
    out.message =
        "view " + name + " materialized: " + std::to_string(rows) + " rows\n";
  } else {
    out.message = "view " + name + " registered (virtual)\n";
  }
  return out;
}

Result<StatementResult> QueryService::HandleInsert(const std::string& stmt) {
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
  size_t i = 2;  // INSERT INTO
  if (tokens[i].kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument("expected a table name");
  }
  std::string name = tokens[i++].text;
  if (!tokens[i].IsKeyword("VALUES")) {
    return Status::InvalidArgument("expected VALUES");
  }
  ++i;
  LatchManager::Guard guard = latches_.StatementShared();
  latches_.AcquireWrite(&guard, {name}, {});
  AQV_ASSIGN_OR_RETURN(const Table* existing, db_.Get(name));
  // Copy-on-write: the version swap below publishes `updated` atomically;
  // a fault injected here must leave the stored version untouched.
  AQV_FAILPOINT("table.cow_copy");
  Table updated = *existing;
  int inserted = 0;
  while (tokens[i].kind == TokenKind::kLParen) {
    ++i;
    Row row;
    while (tokens[i].kind != TokenKind::kRParen) {
      switch (tokens[i].kind) {
        case TokenKind::kInteger:
          row.push_back(Value::Int64(tokens[i].int_value));
          break;
        case TokenKind::kFloat:
          row.push_back(Value::Double(tokens[i].float_value));
          break;
        case TokenKind::kString:
          row.push_back(Value::String(tokens[i].text));
          break;
        case TokenKind::kIdentifier:
          if (tokens[i].IsKeyword("NULL")) {
            row.push_back(Value::Null());
            break;
          }
          [[fallthrough]];
        default:
          return Status::InvalidArgument("expected a literal in VALUES");
      }
      ++i;
      if (tokens[i].kind == TokenKind::kComma) ++i;
    }
    ++i;  // ')'
    AQV_RETURN_NOT_OK(updated.AddRow(std::move(row)));
    ++inserted;
    if (tokens[i].kind == TokenKind::kComma) ++i;
  }
  db_.Put(name, std::move(updated));
  // Write hook: only plans reading `name` are stale.
  cache_invalidated_.Increment(plan_cache_.InvalidateDependency(name));
  StatementResult out;
  out.message =
      std::to_string(inserted) + " row(s) inserted into " + name + "\n";
  return out;
}

Result<size_t> QueryService::RefreshLatched(const std::string& name) {
  AQV_FAILPOINT("service.refresh");
  if (!views_.Has(name)) {
    return Status::NotFound("no view named '" + name + "'");
  }
  AQV_ASSIGN_OR_RETURN(const ViewDef* def, views_.Get(name));
  Evaluator fresh(&db_, &views_);
  AQV_ASSIGN_OR_RETURN(Table contents, fresh.Execute(def->query));
  size_t rows = contents.num_rows();
  db_.Put(name, std::move(contents));
  // Write hook: the view's stored contents changed.
  cache_invalidated_.Increment(plan_cache_.InvalidateDependency(name));
  // A freshly materialized view gets a clean slate: REFRESH is the
  // operator's way out of quarantine.
  ClearViewFailures(name);
  return rows;
}

Result<StatementResult> QueryService::HandleRefresh(const std::string& name) {
  LatchManager::Guard guard = latches_.StatementShared();
  if (!views_.Has(name)) {
    return Status::NotFound("no view named '" + name + "'");
  }
  // The view itself is written; everything its definition reads (its
  // transitive closure) is read.
  std::vector<std::string> reads;
  CollectDependencies({name}, views_, &reads);
  latches_.AcquireWrite(&guard, {name}, reads);
  AQV_ASSIGN_OR_RETURN(size_t rows, RefreshLatched(name));
  StatementResult out;
  out.message =
      "view " + name + " materialized: " + std::to_string(rows) + " rows\n";
  return out;
}

Result<StatementResult> QueryService::HandleLoad(const std::string& stmt) {
  // LOAD <table> FROM '<path>'
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
  if (tokens.size() < 4 || tokens[1].kind != TokenKind::kIdentifier ||
      !tokens[2].IsKeyword("FROM") || tokens[3].kind != TokenKind::kString) {
    return Status::InvalidArgument("usage: LOAD R FROM 'file.csv'");
  }
  std::string name = tokens[1].text;
  AQV_ASSIGN_OR_RETURN(Table loaded, ReadCsvFile(tokens[3].text));
  size_t loaded_rows = loaded.num_rows();
  StatementResult out;
  {
    // Fast path: the table exists, so this is a row write, not DDL.
    LatchManager::Guard guard = latches_.StatementShared();
    if (catalog_.HasTable(name)) {
      AQV_ASSIGN_OR_RETURN(const TableDef* def, catalog_.GetTable(name));
      if (def->num_columns() != loaded.num_columns()) {
        return Status::InvalidArgument("CSV arity does not match table '" +
                                       name + "'");
      }
      latches_.AcquireWrite(&guard, {name}, {});
      db_.Put(name, std::move(loaded));
      cache_invalidated_.Increment(plan_cache_.InvalidateDependency(name));
      out.message = std::to_string(loaded_rows) + " row(s) loaded into " +
                    name + "\n";
      return out;
    }
  }
  // The table is new: schema change. Re-check under the ddl latch — another
  // thread may have created it between the two acquisitions.
  LatchManager::Guard guard = latches_.Ddl();
  if (!catalog_.HasTable(name)) {
    AQV_RETURN_NOT_OK(catalog_.AddTable(TableDef(name, loaded.columns())));
    out.message = "table " + name + " created from the CSV header\n";
    cache_invalidated_.Increment(plan_cache_.Clear());  // DDL hook
  } else {
    AQV_ASSIGN_OR_RETURN(const TableDef* def, catalog_.GetTable(name));
    if (def->num_columns() != loaded.num_columns()) {
      return Status::InvalidArgument("CSV arity does not match table '" + name +
                                     "'");
    }
    cache_invalidated_.Increment(plan_cache_.InvalidateDependency(name));
  }
  out.message += std::to_string(loaded_rows) + " row(s) loaded into " + name +
                 "\n";
  db_.Put(name, std::move(loaded));
  return out;
}

}  // namespace aqv
