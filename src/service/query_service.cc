#include "service/query_service.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "base/failpoint.h"
#include "base/strings.h"
#include "base/trace.h"
#include "exec/csv.h"
#include "exec/expression.h"
#include "exec/explain_plan.h"
#include "ir/fingerprint.h"
#include "ir/printer.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "rewrite/explain.h"
#include "rewrite/optimizer.h"

namespace aqv {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedMicros(Clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   Clock::now() - start)
                                   .count());
}

std::string TrimStatement(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  size_t e = s.find_last_not_of(" \t\r\n;");
  if (b == std::string::npos || e == std::string::npos || e < b) return "";
  return s.substr(b, e - b + 1);
}

}  // namespace

std::string ServiceStats::ToString() const {
  char buf[1280];
  std::snprintf(
      buf, sizeof(buf),
      "statements          %llu\n"
      "queries served      %llu\n"
      "plan cache          %llu hit / %llu miss (%.1f%% hit rate, "
      "%zu/%zu entries, %llu invalidated)\n"
      "rewrites            %llu applied / %llu skipped\n"
      "snapshots           %llu pinned / %llu reads\n"
      "latch stripes       %zu\n"
      "slow queries        %llu\n"
      "optimize latency    p50=%.1fus p99=%.1fus max=%lluus\n"
      "execute latency     p50=%.1fus p99=%.1fus max=%lluus\n",
      static_cast<unsigned long long>(statements),
      static_cast<unsigned long long>(queries_served),
      static_cast<unsigned long long>(plan_cache_hits),
      static_cast<unsigned long long>(plan_cache_misses),
      plan_cache_hit_rate * 100.0, plan_cache_size, plan_cache_capacity,
      static_cast<unsigned long long>(plan_cache_invalidated),
      static_cast<unsigned long long>(rewrites_applied),
      static_cast<unsigned long long>(rewrites_skipped),
      static_cast<unsigned long long>(snapshots_pinned),
      static_cast<unsigned long long>(snapshot_reads), latch_stripes,
      static_cast<unsigned long long>(slow_queries), optimize_p50_micros,
      optimize_p99_micros,
      static_cast<unsigned long long>(optimize_max_micros), exec_p50_micros,
      exec_p99_micros, static_cast<unsigned long long>(exec_max_micros));
  std::string out = buf;
  out += "rows written        " + std::to_string(rows_inserted) +
         " inserted / " + std::to_string(rows_deleted) + " deleted\n";
  out += "view maintenance    " + std::to_string(views_maintained) +
         " maintained / " + std::to_string(views_recomputed) + " recomputed\n";
  char mbuf[128];
  std::snprintf(mbuf, sizeof(mbuf),
                "maintain latency    p50=%.1fus p99=%.1fus max=%lluus\n",
                maintain_p50_micros, maintain_p99_micros,
                static_cast<unsigned long long>(maintain_max_micros));
  out += mbuf;
  out += "admission rejects   " + std::to_string(admission_rejects) + "\n";
  out += "degraded fallbacks  " + std::to_string(degraded_fallbacks) + "\n";
  if (!mvcc.empty()) {
    size_t versions = 0, bytes = 0;
    for (const auto& m : mvcc) {
      versions += m.versions_alive;
      bytes += m.bytes_pinned;
    }
    out += "mvcc                " + std::to_string(versions) +
           " version(s) alive, " + std::to_string(bytes) +
           " bytes pinned by retired versions";
    if (mvcc_oldest_pinned_epoch > 0) {
      out += " (oldest pinned epoch " +
             std::to_string(mvcc_oldest_pinned_epoch) + ")";
    }
    out += "\n";
    for (const auto& m : mvcc) {
      if (m.versions_alive <= 1 && m.bytes_pinned == 0) continue;
      out += "  mvcc " + m.table + "  " + std::to_string(m.versions_alive) +
             " version(s), " + std::to_string(m.bytes_pinned) +
             " bytes pinned\n";
    }
  }
  if (!errors_by_code.empty()) {
    out += "errors              ";
    for (size_t i = 0; i < errors_by_code.size(); ++i) {
      if (i > 0) out += " ";
      out += errors_by_code[i].first + "=" +
             std::to_string(errors_by_code[i].second);
    }
    out += "\n";
  }
  if (!quarantined_views.empty()) {
    out += "quarantined views   " + Join(quarantined_views, ", ") + "\n";
  }
  if (storage_attached) {
    char sbuf[512];
    std::snprintf(
        sbuf, sizeof(sbuf),
        "storage pages       %llu read / %llu written\n"
        "storage wal         %llu bytes / %llu records / %llu fsyncs\n"
        "storage checkpoints %llu (checkpoint seq %llu, last commit seq "
        "%llu)\n"
        "storage recovery    %llu records replayed, %lldms\n",
        static_cast<unsigned long long>(storage_pages_read),
        static_cast<unsigned long long>(storage_pages_written),
        static_cast<unsigned long long>(storage_wal_bytes),
        static_cast<unsigned long long>(storage_wal_records),
        static_cast<unsigned long long>(storage_wal_fsyncs),
        static_cast<unsigned long long>(storage_checkpoints),
        static_cast<unsigned long long>(storage_checkpoint_seq),
        static_cast<unsigned long long>(storage_last_commit_seq),
        static_cast<unsigned long long>(storage_wal_replayed),
        static_cast<long long>(storage_recovery_ms));
    out += sbuf;
    std::snprintf(
        sbuf, sizeof(sbuf),
        "storage pool        %llu hits / %llu misses\n"
        "storage fsync       p50=%.1fus p99=%.1fus max=%lluus\n"
        "storage checkpoint  p99=%.1fus\n"
        "recovery phases     replay=%lldms view-recompute=%lldms\n",
        static_cast<unsigned long long>(storage_pool_hits),
        static_cast<unsigned long long>(storage_pool_misses),
        storage_fsync_p50_micros, storage_fsync_p99_micros,
        static_cast<unsigned long long>(storage_fsync_max_micros),
        storage_checkpoint_p99_micros,
        static_cast<long long>(storage_recovery_replay_ms),
        static_cast<long long>(storage_recovery_recompute_ms));
    out += sbuf;
    std::snprintf(
        sbuf, sizeof(sbuf),
        "storage wal size    %llu bytes (%llu auto-checkpoint(s), %llu "
        "backpressure wait(s))\n"
        "storage group batch p50=%.1f p99=%.1f commits/fsync\n",
        static_cast<unsigned long long>(storage_wal_size_bytes),
        static_cast<unsigned long long>(storage_auto_checkpoints),
        static_cast<unsigned long long>(storage_backpressure_waits),
        storage_group_batch_p50, storage_group_batch_p99);
    out += sbuf;
    if (!quarantined_tables.empty()) {
      out += "quarantined tables  ";
      for (size_t i = 0; i < quarantined_tables.size(); ++i) {
        if (i > 0) out += ", ";
        out += quarantined_tables[i].first;
      }
      out += " (" + std::to_string(storage_pages_quarantined) +
             " page(s); repair with LOAD)\n";
    }
  }
  char obuf[160];
  std::snprintf(obuf, sizeof(obuf),
                "trace dropped spans %llu\n"
                "telemetry           %llu window(s) sampled, %llu dropped\n",
                static_cast<unsigned long long>(trace_dropped_spans),
                static_cast<unsigned long long>(telemetry_windows),
                static_cast<unsigned long long>(telemetry_dropped));
  out += obuf;
  return out;
}

QueryService::QueryService(ServiceOptions options)
    : options_(options),
      latches_(options.latch_stripes),
      plan_cache_(options.enable_plan_cache ? options.plan_cache_capacity : 0),
      statements_(metrics_.GetCounter("service.statements")),
      queries_served_(metrics_.GetCounter("service.queries_served")),
      cache_hits_(metrics_.GetCounter("service.plan_cache.hits")),
      cache_misses_(metrics_.GetCounter("service.plan_cache.misses")),
      cache_invalidated_(metrics_.GetCounter("service.plan_cache.invalidated")),
      rewrites_applied_(metrics_.GetCounter("service.rewrites.applied")),
      rewrites_skipped_(metrics_.GetCounter("service.rewrites.skipped")),
      slow_queries_(metrics_.GetCounter("service.slow_queries")),
      snapshots_pinned_(metrics_.GetCounter("service.snapshots.pinned")),
      snapshot_reads_(metrics_.GetCounter("service.snapshots.reads")),
      admission_rejects_(metrics_.GetCounter("service.admission_rejects_total")),
      degraded_fallbacks_(
          metrics_.GetCounter("service.degraded_fallbacks_total")),
      rows_inserted_(metrics_.GetCounter("service.rows_inserted_total")),
      rows_deleted_(metrics_.GetCounter("service.rows_deleted_total")),
      views_maintained_(
          metrics_.GetCounter("service.views_maintained_total")),
      views_recomputed_(
          metrics_.GetCounter("service.views_recomputed_total")),
      cache_size_gauge_(metrics_.GetGauge("service.plan_cache.size")),
      cache_capacity_gauge_(metrics_.GetGauge("service.plan_cache.capacity")),
      optimize_latency_(metrics_.GetHistogram("service.optimize_latency")),
      exec_latency_(metrics_.GetHistogram("service.exec_latency")),
      maintain_latency_(metrics_.GetHistogram("service.maintain_latency")) {
  options_.eval.vectorized = options_.vectorized;
  cache_capacity_gauge_.Set(static_cast<int64_t>(plan_cache_.capacity()));
  metrics_.SetHelp("service.statements", "Statements accepted (all kinds)");
  metrics_.SetHelp("service.queries_served", "SELECTs executed to completion");
  metrics_.SetHelp("service.errors_total",
                   "Failed statements by status-code token");
  metrics_.SetHelp("service.exec_latency",
                   "SELECT execution wall time, microseconds");
  metrics_.SetHelp("service.optimize_latency",
                   "Rewrite-search wall time per planned statement, "
                   "microseconds");
  metrics_.SetHelp("service.maintain_latency",
                   "Write-path view maintenance wall time, microseconds");
  metrics_.SetHelp("service.rows_inserted_total",
                   "Rows added by INSERT/UPDATE/COMMIT batches");
  metrics_.SetHelp("service.rows_deleted_total",
                   "Rows removed by DELETE/UPDATE/COMMIT batches");
  metrics_.SetHelp("mvcc.versions_alive",
                   "Table versions still reachable (current + retired "
                   "versions pinned by snapshots or in-flight readers)");
  metrics_.SetHelp("mvcc.bytes_pinned",
                   "Approximate bytes held by retired-but-referenced table "
                   "versions, including their columnar pivot caches");
  metrics_.SetHelp("mvcc.oldest_pinned_epoch",
                   "Epoch of the oldest retired table version still alive "
                   "(0 = nothing but current versions)");
  metrics_.SetHelp("trace.dropped_spans",
                   "Spans lost to trace-ring overflow since the last clear");
  metrics_.SetHelp("telemetry.windows_sampled",
                   "Telemetry windows cut since service start");
  metrics_.SetHelp("telemetry.windows_dropped",
                   "Telemetry windows evicted from the history ring");
  metrics_.SetHelp("storage.wal_fsync_latency",
                   "WAL fsync wall time per commit, microseconds");
  metrics_.SetHelp("storage.checkpoint_latency",
                   "Full shadow-paged checkpoint duration, microseconds");
  metrics_.SetHelp("storage.wal_size_bytes",
                   "Current WAL file size in bytes (falls to 0 at "
                   "checkpoint)");
  metrics_.SetHelp("storage.auto_checkpoints_total",
                   "Checkpoints taken by the background auto-checkpointer");
  metrics_.SetHelp("storage.backpressure_waits_total",
                   "Writers stalled because the WAL outgrew the "
                   "backpressure cap");
  metrics_.SetHelp("storage.group_commit_batch",
                   "Commit records made durable per WAL fsync (group "
                   "commit batch size)");
  metrics_.SetHelp("storage.pages_quarantined_total",
                   "Data pages belonging to tables quarantined by "
                   "recovery's corruption checks");
  if (!options_.storage_path.empty()) {
    storage_status_ = AttachStorage();
    if (!storage_status_.ok()) {
      // The service still constructs (empty, in-memory) so the caller can
      // read storage_status(), fix the cause and retry with a fresh
      // instance; recovery never writes, so retrying is always safe.
      storage_.reset();
    }
  }
  TelemetryOptions topts;
  topts.interval_micros = options_.telemetry_interval_micros;
  topts.capacity = options_.telemetry_history_capacity;
  telemetry_ = std::make_unique<TelemetryRecorder>(&metrics_, topts);
  telemetry_->Start();  // no-op when the interval is 0
  if (storage_ != nullptr &&
      (options_.storage_auto_checkpoint_wal_bytes > 0 ||
       options_.storage_auto_checkpoint_commits > 0 ||
       options_.storage_backpressure_wal_bytes > 0)) {
    checkpointer_ = std::thread(&QueryService::AutoCheckpointLoop, this);
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(checkpoint_mutex_);
    stop_checkpointer_ = true;
  }
  checkpoint_cv_.notify_all();
  if (checkpointer_.joinable()) checkpointer_.join();
}

Status QueryService::AttachStorage() {
  StorageOptions sopts;
  sopts.path = options_.storage_path;
  sopts.buffer_pool_pages = options_.storage_buffer_pages;
  sopts.fsync_wal = options_.storage_fsync_wal;
  sopts.group_commit = options_.storage_group_commit;
  sopts.group_commit_window_micros =
      options_.storage_group_commit_window_micros;
  sopts.staged_replay = options_.storage_staged_replay;
  sopts.auto_checkpoint_wal_bytes = options_.storage_auto_checkpoint_wal_bytes;
  sopts.auto_checkpoint_commits = options_.storage_auto_checkpoint_commits;
  sopts.backpressure_wal_bytes = options_.storage_backpressure_wal_bytes;
  AQV_ASSIGN_OR_RETURN(std::unique_ptr<StorageEngine> engine,
                       StorageEngine::Open(std::move(sopts), &metrics_));
  RecoveredState& rec = engine->recovered();

  LatchManager::Guard guard = latches_.Ddl();
  catalog_ = std::move(rec.catalog);
  views_ = std::move(rec.views);
  db_ = std::move(rec.db);
  storage_ = std::move(engine);

  // Self-heal first: a stored view whose own pages rotted but whose
  // definition closure has no quarantined base table holds nothing that
  // cannot be re-derived — a view cannot be LOAD-repaired, so dead-ending
  // the quarantine on it would be permanent. Drop it from the quarantine
  // (engine map included, so the next checkpoint persists the lift) and
  // queue it for the stale-view recompute below.
  std::map<std::string, std::string> quarantined = rec.quarantined_tables;
  std::vector<std::string> healed_views;
  for (const auto& [name, reason] : rec.quarantined_tables) {
    if (!views_.Has(name)) continue;
    std::vector<std::string> closure;
    CollectDependencies({name}, views_, &closure);
    bool clean = true;
    for (const std::string& n : closure) {
      // Quarantined views in the closure do not block healing: they are
      // derivations too, and the upstream-first recompute refreshes them
      // before this one reads them.
      if (n != name && !views_.Has(n) && quarantined.count(n) > 0) {
        clean = false;
        break;
      }
    }
    if (clean) {
      quarantined.erase(name);
      storage_->ClearQuarantinedTable(name);
      healed_views.push_back(name);
    }
  }

  // Install recovery's quarantine before anything reads the salvaged state:
  // every corrupt table, plus every materialized view whose definition
  // closure touches one — recomputing such a view against a salvaged-empty
  // base would publish silently wrong rows, which is exactly what the
  // quarantine exists to prevent.
  {
    std::lock_guard<std::mutex> lock(quarantine_mutex_);
    table_quarantine_ = quarantined;
  }
  if (!quarantined.empty()) {
    std::lock_guard<std::mutex> lock(quarantine_mutex_);
    for (const std::string& view : views_.ViewNames()) {
      if (!db_.Has(view)) continue;  // virtual: reads hit the base check
      std::vector<std::string> closure;
      CollectDependencies({view}, views_, &closure);
      for (const std::string& n : closure) {
        auto it = quarantined.find(n);
        if (it == quarantined.end()) continue;
        table_quarantine_.emplace(
            view, "depends on quarantined table '" + n + "'");
        break;
      }
    }
  }

  // Recompute every stale view (checkpoint contents predate the replayed
  // WAL tail, or were never written), upstream-first so a view over another
  // stale view reads refreshed inputs. This is the second recovery phase —
  // WAL replay happened inside StorageEngine::Open — and is timed
  // separately so E18-style analysis can tell log-bound from compute-bound
  // recoveries apart. Quarantined views are skipped, not recomputed: their
  // inputs cannot be trusted, and their reads error until repair.
  Clock::time_point recompute_start = Clock::now();
  std::vector<std::string> pending = rec.stale_views;
  {
    std::lock_guard<std::mutex> lock(quarantine_mutex_);
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&](const std::string& v) {
                                   return table_quarantine_.count(v) > 0;
                                 }),
                  pending.end());
  }
  // Healed views re-derive their contents here; their salvaged-empty
  // checkpoint image is never served.
  for (const std::string& view : healed_views) {
    if (std::find(pending.begin(), pending.end(), view) == pending.end()) {
      pending.push_back(view);
    }
  }
  while (!pending.empty()) {
    bool progressed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      std::vector<std::string> closure;
      CollectDependencies({*it}, views_, &closure);
      bool ready = true;
      for (const std::string& n : closure) {
        if (n != *it &&
            std::find(pending.begin(), pending.end(), n) != pending.end()) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        ++it;
        continue;
      }
      AQV_RETURN_NOT_OK(RecomputeViewInto(*it, &db_));
      it = pending.erase(it);
      progressed = true;
    }
    if (!progressed) {
      return Status::Internal("cyclic stale-view dependencies at recovery");
    }
  }
  metrics_.GetGauge("storage.recovery_recompute_ms")
      .Set(static_cast<int64_t>(ElapsedMicros(recompute_start) / 1000));

  // Warm the plan cache from the persisted images — but only if the
  // re-registered schema matches the versions the images were saved under;
  // any drift (a view that failed to re-parse, a format change) means the
  // cached plans can no longer be trusted and the cache starts cold.
  if (rec.plan_catalog_version == catalog_.version() &&
      rec.plan_views_version == views_.version()) {
    for (const PlanImage& image : rec.plans) {
      Result<Query> plan = ParseQuery(image.plan_sql);
      if (!plan.ok()) continue;  // drop just this image
      auto entry = std::make_shared<PlanCache::Entry>();
      entry->plan = *std::move(plan);
      entry->used_materialized_view = image.used_materialized_view;
      entry->rewritings_considered = image.rewritings_considered;
      entry->cost_original = image.cost_original;
      entry->cost_chosen = image.cost_chosen;
      entry->dependencies = image.dependencies;
      plan_cache_.Insert(image.key, std::move(entry));
    }
  }

  // A mid-log tear's quarantine was derived from the suspect WAL tail that
  // recovery itself truncated: checkpoint now, while still quiesced, so the
  // quarantine reaches the directory blob before the process can exit.
  // Without this a second restart finds a clean WAL, derives nothing, and
  // silently serves rows missing an acknowledged commit. (The window
  // between the in-recovery truncation and this checkpoint is the residual
  // exposure; it closes before the service accepts its first statement.)
  if (rec.wal_mid_log_corruption) {
    AQV_RETURN_NOT_OK(
        storage_->Checkpoint(catalog_, views_, db_, CollectPlanImages()));
  }

  storage_pages_read_ = &metrics_.GetCounter("storage.pages_read");
  storage_pages_written_ = &metrics_.GetCounter("storage.pages_written");
  storage_wal_bytes_ = &metrics_.GetCounter("storage.wal_bytes");
  storage_wal_records_ = &metrics_.GetCounter("storage.wal_records");
  storage_wal_fsyncs_ = &metrics_.GetCounter("storage.wal_fsyncs");
  storage_checkpoints_ = &metrics_.GetCounter("storage.checkpoints");
  storage_wal_replayed_ = &metrics_.GetCounter("storage.wal_replayed");
  storage_recovery_ms_ = &metrics_.GetGauge("storage.recovery_ms");
  storage_pool_hits_ = &metrics_.GetCounter("storage.pool_hits");
  storage_pool_misses_ = &metrics_.GetCounter("storage.pool_misses");
  storage_fsync_latency_ = &metrics_.GetHistogram("storage.wal_fsync_latency");
  storage_checkpoint_latency_ =
      &metrics_.GetHistogram("storage.checkpoint_latency");
  storage_recovery_replay_ms_ = &metrics_.GetGauge("storage.recovery_replay_ms");
  storage_recovery_recompute_ms_ =
      &metrics_.GetGauge("storage.recovery_recompute_ms");
  storage_wal_size_ = &metrics_.GetGauge("storage.wal_size_bytes");
  storage_auto_checkpoints_ =
      &metrics_.GetCounter("storage.auto_checkpoints_total");
  storage_backpressure_waits_ =
      &metrics_.GetCounter("storage.backpressure_waits_total");
  storage_group_batch_ = &metrics_.GetHistogram("storage.group_commit_batch");
  storage_pages_quarantined_ =
      &metrics_.GetCounter("storage.pages_quarantined_total");
  return Status::OK();
}

std::vector<PlanImage> QueryService::CollectPlanImages() const {
  std::vector<PlanImage> images;
  for (auto& [key, entry] : plan_cache_.Snapshot()) {
    PlanImage image;
    image.key = key;
    image.plan_sql = ToSql(entry->plan);
    image.used_materialized_view = entry->used_materialized_view;
    image.rewritings_considered = entry->rewritings_considered;
    image.cost_original = entry->cost_original;
    image.cost_chosen = entry->cost_chosen;
    image.dependencies = entry->dependencies;
    images.push_back(std::move(image));
  }
  return images;
}

Status QueryService::CheckpointIfDurable() {
  if (storage_ == nullptr) return Status::OK();
  return storage_->Checkpoint(catalog_, views_, db_, CollectPlanImages());
}

namespace {

/// True for introspection statements that bypass admission control: an
/// operator must be able to inspect (and disarm failpoints on) a server
/// that is rejecting data statements as busy.
bool IsControlStatement(const std::string& upper) {
  return upper == "STATS" || StartsWith(upper, "STATS ") ||
         upper == "MONITOR" || StartsWith(upper, "MONITOR ") ||
         upper == "SLOWLOG" || upper == "TABLES" || upper == "VIEWS" ||
         upper == "COMMIT" || upper == "ROLLBACK" || upper == "SCRUB" ||
         StartsWith(upper, "TRACE") || StartsWith(upper, "FAILPOINT");
}

}  // namespace

Result<StatementResult> QueryService::Execute(const std::string& statement) {
  if (options_.max_statement_bytes > 0 &&
      statement.size() > options_.max_statement_bytes) {
    Status overlong = Status::InvalidArgument(
        "statement is " + std::to_string(statement.size()) +
        " bytes, over the " + std::to_string(options_.max_statement_bytes) +
        "-byte limit");
    RecordError(overlong);
    return overlong;
  }
  std::string stmt = TrimStatement(statement);
  if (stmt.empty() || stmt[0] == '#') return StatementResult{};
  statements_.Increment();
  std::string upper = ToUpper(stmt);
  const bool admitted = !IsControlStatement(upper);
  if (admitted) {
    Status slot = AdmitStatement();
    if (!slot.ok()) {
      RecordError(slot);
      return slot;
    }
  }
  Result<StatementResult> result = [&]() -> Result<StatementResult> {
    // Root span of the statement lifecycle: parse/bind, latch acquisition,
    // rewrite enumeration, costing, cache lookup and execution nest under it.
    TraceSpan span("statement");
    if (span.active()) {
      span.AddAttr("sql", stmt.size() <= 120 ? stmt : stmt.substr(0, 120));
    }
    return Dispatch(stmt, upper);
  }();
  if (admitted) ReleaseStatement();
  if (!result.ok()) RecordError(result.status());
  return result;
}

Status QueryService::AdmitStatement() {
  if (options_.max_concurrent_statements == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(admission_mutex_);
  auto has_slot = [this] {
    return inflight_statements_ < options_.max_concurrent_statements;
  };
  if (!has_slot() &&
      !admission_cv_.wait_for(
          lock, std::chrono::microseconds(options_.admission_wait_micros),
          has_slot)) {
    admission_rejects_.Increment();
    return Status::Unavailable(
        "SERVER_BUSY: " + std::to_string(inflight_statements_) +
        " statement(s) in flight (limit " +
        std::to_string(options_.max_concurrent_statements) + "); retry later");
  }
  ++inflight_statements_;
  return Status::OK();
}

void QueryService::ReleaseStatement() {
  if (options_.max_concurrent_statements == 0) return;
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    --inflight_statements_;
  }
  admission_cv_.notify_one();
}

void QueryService::RecordError(const Status& status) {
  if (status.ok()) return;
  std::string code = StatusCodeToString(status.code());
  for (char& c : code) {
    if (c == ' ') c = '_';
  }
  metrics_.GetCounter("service.errors_total{code=\"" + code + "\"}")
      .Increment();
}

void QueryService::ChargeViewFailure(const std::string& view) {
  if (options_.view_quarantine_threshold == 0) return;
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  ViewFailureRecord& rec = view_failures_[view];
  ++rec.failures;
  if (rec.failures >= options_.view_quarantine_threshold &&
      rec.quarantined_at == 0) {
    // Stamp the cooldown clock when the threshold is first crossed.
    rec.quarantined_at = statements_.value();
  }
}

std::vector<std::string> QueryService::QuarantinedViews() const {
  std::vector<std::string> out;
  if (options_.view_quarantine_threshold == 0) return out;
  const uint64_t now = statements_.value();
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  for (auto it = view_failures_.begin(); it != view_failures_.end();) {
    const ViewFailureRecord& rec = it->second;
    if (rec.failures >= options_.view_quarantine_threshold) {
      // Cooldown sweep: enough statements have passed since quarantine, so
      // the view re-enters candidacy with a clean slate (fresh failures can
      // re-quarantine it).
      if (options_.quarantine_cooldown_statements > 0 &&
          now >= rec.quarantined_at + options_.quarantine_cooldown_statements) {
        it = view_failures_.erase(it);
        continue;
      }
      out.push_back(it->first);
    }
    ++it;
  }
  std::sort(out.begin(), out.end());
  return out;
}

void QueryService::ClearViewFailures(const std::string& view) {
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  view_failures_.erase(view);
}

Result<Table> QueryService::Select(const std::string& sql) {
  AQV_ASSIGN_OR_RETURN(StatementResult result, Execute(sql));
  if (!result.table.has_value()) {
    return Status::InvalidArgument("not a SELECT statement: " + sql);
  }
  return *std::move(result.table);
}

ServiceSnapshotPtr QueryService::PinSnapshot() {
  TraceSpan span("snapshot_pin");
  LatchManager::Guard guard = latches_.StatementShared();
  // Every stripe shared: waits out in-flight writers, so the version vector
  // copied below is a transactionally consistent cut across all tables.
  latches_.AcquireAllShared(&guard);
  auto snap = std::make_shared<ServiceSnapshot>();
  snap->catalog = catalog_;
  snap->views = views_;
  snap->db = db_.Snapshot();
  snap->epoch = snap->db.epoch();
  snapshots_pinned_.Increment();
  if (span.active()) {
    span.AddAttr("stripes", static_cast<uint64_t>(guard.stripes_held()));
    span.AddAttr("epoch", snap->epoch);
  }
  return snap;
}

Result<Table> QueryService::Select(const std::string& sql,
                                   const ServiceSnapshot& snapshot) {
  std::string stmt = TrimStatement(sql);
  if (stmt.empty()) {
    return Status::InvalidArgument("not a SELECT statement: " + sql);
  }
  statements_.Increment();
  TraceSpan span("statement");
  if (span.active()) {
    span.AddAttr("sql", stmt.size() <= 120 ? stmt : stmt.substr(0, 120));
  }
  AQV_ASSIGN_OR_RETURN(StatementResult result, SelectOnSnapshot(stmt, snapshot));
  if (!result.table.has_value()) {
    return Status::InvalidArgument("not a SELECT statement: " + sql);
  }
  return *std::move(result.table);
}

Status QueryService::Bootstrap(Catalog catalog, Database db,
                               ViewRegistry views) {
  LatchManager::Guard guard = latches_.Ddl();
  catalog_ = std::move(catalog);
  db_ = std::move(db);
  views_ = std::move(views);
  cache_invalidated_.Increment(plan_cache_.Clear());
  // A bootstrap is wholesale DDL: checkpoint it so a crash right after
  // recovers the installed workload, not the pre-bootstrap file.
  return CheckpointIfDurable();
}

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  s.statements = statements_.value();
  s.queries_served = queries_served_.value();
  s.plan_cache_hits = cache_hits_.value();
  s.plan_cache_misses = cache_misses_.value();
  s.plan_cache_invalidated = cache_invalidated_.value();
  s.rewrites_applied = rewrites_applied_.value();
  s.rewrites_skipped = rewrites_skipped_.value();
  s.slow_queries = slow_queries_.value();
  s.snapshots_pinned = snapshots_pinned_.value();
  s.snapshot_reads = snapshot_reads_.value();
  s.admission_rejects = admission_rejects_.value();
  s.degraded_fallbacks = degraded_fallbacks_.value();
  s.rows_inserted = rows_inserted_.value();
  s.rows_deleted = rows_deleted_.value();
  s.views_maintained = views_maintained_.value();
  s.views_recomputed = views_recomputed_.value();
  s.mvcc = db_.MvccStats();
  s.mvcc_oldest_pinned_epoch = db_.OldestPinnedEpoch();
  const std::string kErrorPrefix = "service.errors_total{code=\"";
  for (auto& [name, value] : metrics_.CounterValues(kErrorPrefix)) {
    // Strip the family prefix and the trailing '"}' to recover the token.
    std::string code = name.substr(kErrorPrefix.size());
    if (code.size() >= 2) code.resize(code.size() - 2);
    s.errors_by_code.emplace_back(std::move(code), value);
  }
  s.quarantined_views = QuarantinedViews();
  s.plan_cache_size = plan_cache_.size();
  s.plan_cache_capacity = plan_cache_.capacity();
  s.latch_stripes = latches_.stripe_count();
  uint64_t lookups = s.plan_cache_hits + s.plan_cache_misses;
  s.plan_cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(s.plan_cache_hits) /
                         static_cast<double>(lookups);
  s.optimize_p50_micros = optimize_latency_.PercentileMicros(0.5);
  s.optimize_p99_micros = optimize_latency_.PercentileMicros(0.99);
  s.optimize_max_micros = optimize_latency_.max_micros();
  s.exec_p50_micros = exec_latency_.PercentileMicros(0.5);
  s.exec_p99_micros = exec_latency_.PercentileMicros(0.99);
  s.exec_max_micros = exec_latency_.max_micros();
  s.maintain_p50_micros = maintain_latency_.PercentileMicros(0.5);
  s.maintain_p99_micros = maintain_latency_.PercentileMicros(0.99);
  s.maintain_max_micros = maintain_latency_.max_micros();
  if (storage_ != nullptr) {
    s.storage_attached = true;
    s.storage_pages_read = storage_pages_read_->value();
    s.storage_pages_written = storage_pages_written_->value();
    s.storage_wal_bytes = storage_wal_bytes_->value();
    s.storage_wal_records = storage_wal_records_->value();
    s.storage_wal_fsyncs = storage_wal_fsyncs_->value();
    s.storage_checkpoints = storage_checkpoints_->value();
    s.storage_wal_replayed = storage_wal_replayed_->value();
    s.storage_recovery_ms = storage_recovery_ms_->value();
    s.storage_last_commit_seq = storage_->last_commit_seq();
    s.storage_checkpoint_seq = storage_->checkpoint_seq();
    s.storage_pool_hits = storage_pool_hits_->value();
    s.storage_pool_misses = storage_pool_misses_->value();
    s.storage_fsync_p50_micros = storage_fsync_latency_->PercentileMicros(0.5);
    s.storage_fsync_p99_micros = storage_fsync_latency_->PercentileMicros(0.99);
    s.storage_fsync_max_micros = storage_fsync_latency_->max_micros();
    s.storage_checkpoint_p99_micros =
        storage_checkpoint_latency_->PercentileMicros(0.99);
    s.storage_recovery_replay_ms = storage_recovery_replay_ms_->value();
    s.storage_recovery_recompute_ms = storage_recovery_recompute_ms_->value();
    s.storage_wal_size_bytes =
        static_cast<uint64_t>(storage_wal_size_->value());
    s.storage_auto_checkpoints = storage_auto_checkpoints_->value();
    s.storage_backpressure_waits = storage_backpressure_waits_->value();
    s.storage_group_batch_p50 = storage_group_batch_->PercentileMicros(0.5);
    s.storage_group_batch_p99 = storage_group_batch_->PercentileMicros(0.99);
    s.storage_pages_quarantined = storage_pages_quarantined_->value();
    s.quarantined_tables = QuarantinedTables();
  }
  s.trace_dropped_spans = Tracer::Global().dropped();
  s.telemetry_windows = telemetry_->windows_sampled();
  s.telemetry_dropped = telemetry_->windows_dropped();
  return s;
}

void QueryService::ResetStats() {
  metrics_.ResetAll();
  cache_capacity_gauge_.Set(static_cast<int64_t>(plan_cache_.capacity()));
  std::lock_guard<std::mutex> lock(slow_log_mutex_);
  slow_log_.clear();
}

std::string QueryService::StatsPromText() {
  cache_size_gauge_.Set(static_cast<int64_t>(plan_cache_.size()));
  // Pull-model metrics refreshed at scrape time: trace-ring overflow (so a
  // truncated Chrome trace is detectable from the exposition alone) and the
  // telemetry recorder's own accounting.
  metrics_.GetGauge("trace.dropped_spans")
      .Set(static_cast<int64_t>(Tracer::Global().dropped()));
  metrics_.GetGauge("telemetry.windows_sampled")
      .Set(static_cast<int64_t>(telemetry_->windows_sampled()));
  metrics_.GetGauge("telemetry.windows_dropped")
      .Set(static_cast<int64_t>(telemetry_->windows_dropped()));
  // MVCC garbage accounting, recomputed at scrape time: what the COW
  // version vector still keeps alive beyond the current versions.
  for (const Database::TableMvcc& m : db_.MvccStats()) {
    metrics_.GetGauge("mvcc.versions_alive{table=\"" + m.table + "\"}")
        .Set(static_cast<int64_t>(m.versions_alive));
    metrics_.GetGauge("mvcc.bytes_pinned{table=\"" + m.table + "\"}")
        .Set(static_cast<int64_t>(m.bytes_pinned));
  }
  metrics_.GetGauge("mvcc.oldest_pinned_epoch")
      .Set(static_cast<int64_t>(db_.OldestPinnedEpoch()));
  return metrics_.PromText();
}

std::vector<SlowQueryRecord> QueryService::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_log_mutex_);
  return std::vector<SlowQueryRecord>(slow_log_.begin(), slow_log_.end());
}

void QueryService::RecordSlowQuery(SlowQueryRecord record) {
  slow_queries_.Increment();
  std::lock_guard<std::mutex> lock(slow_log_mutex_);
  slow_log_.push_back(std::move(record));
  while (slow_log_.size() > options_.slow_query_log_capacity &&
         !slow_log_.empty()) {
    slow_log_.pop_front();
  }
}

void QueryService::MaybeRecordSlowStatement(const std::string& stmt,
                                            const QueryStats& qs) {
  if (options_.slow_query_micros == 0 ||
      qs.total_micros < options_.slow_query_micros) {
    return;
  }
  SlowQueryRecord record;
  record.statement = stmt;
  record.fingerprint = qs.fingerprint;
  record.epoch = qs.epoch;
  record.parse_micros = qs.parse_micros;
  record.optimize_micros = qs.optimize_micros;
  record.exec_micros = qs.exec_micros;
  record.maintain_micros = qs.maintain_micros;
  record.wal_commit_micros = qs.wal_commit_micros;
  record.total_micros = qs.total_micros;
  record.cache_hit = qs.cache_hit;
  RecordSlowQuery(std::move(record));
}

void QueryService::RecordStatementProfile(const std::string& stmt,
                                          const QueryStats& qs) {
  if (options_.attribution_capacity == 0 || qs.fingerprint == 0) return;
  std::lock_guard<std::mutex> lock(profile_mutex_);
  auto it = profiles_.find(qs.fingerprint);
  if (it == profiles_.end()) {
    if (profiles_.size() >= options_.attribution_capacity) {
      ++profile_overflow_;
      return;
    }
    it = profiles_.emplace(qs.fingerprint, FingerprintProfile{}).first;
    it->second.fingerprint = qs.fingerprint;
    it->second.example = stmt.size() <= 200 ? stmt : stmt.substr(0, 200);
  }
  FingerprintProfile& p = it->second;
  ++p.count;
  if (qs.cache_hit) ++p.cache_hits;
  p.totals.Add(qs);
}

std::vector<FingerprintProfile> QueryService::FingerprintProfiles() const {
  std::vector<FingerprintProfile> out;
  {
    std::lock_guard<std::mutex> lock(profile_mutex_);
    out.reserve(profiles_.size());
    for (const auto& [fp, profile] : profiles_) out.push_back(profile);
  }
  std::sort(out.begin(), out.end(),
            [](const FingerprintProfile& a, const FingerprintProfile& b) {
              return a.totals.total_micros > b.totals.total_micros;
            });
  return out;
}

ServiceSnapshotPtr QueryService::ThreadSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  auto it = thread_snapshots_.find(std::this_thread::get_id());
  return it == thread_snapshots_.end() ? nullptr : it->second;
}

Result<StatementResult> QueryService::HandleBeginSnapshot() {
  std::thread::id tid = std::this_thread::get_id();
  if (ThreadHasWriteBatch()) {
    return Status::InvalidArgument(
        "a write batch is open on this thread; COMMIT or ROLLBACK it before "
        "BEGIN SNAPSHOT");
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    if (thread_snapshots_.count(tid) > 0) {
      return Status::InvalidArgument(
          "a snapshot is already open on this thread; COMMIT it first");
    }
  }
  ServiceSnapshotPtr snap = PinSnapshot();
  StatementResult out;
  out.message = "snapshot pinned at epoch " + std::to_string(snap->epoch) +
                " (" + std::to_string(snap->db.TableNames().size()) +
                " tables)\n";
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  thread_snapshots_[tid] = std::move(snap);
  return out;
}

bool QueryService::ThreadHasWriteBatch() const {
  std::lock_guard<std::mutex> lock(write_batch_mutex_);
  return write_batches_.count(std::this_thread::get_id()) > 0;
}

Result<StatementResult> QueryService::HandleBeginWrite() {
  if (ThreadSnapshot() != nullptr) {
    return Status::InvalidArgument(
        "a snapshot is open on this thread; COMMIT it before BEGIN WRITE");
  }
  std::lock_guard<std::mutex> lock(write_batch_mutex_);
  auto [it, opened] = write_batches_.try_emplace(std::this_thread::get_id());
  (void)it;
  if (!opened) {
    return Status::InvalidArgument(
        "a write batch is already open on this thread; COMMIT or ROLLBACK "
        "it first");
  }
  StatementResult out;
  out.message = "write batch opened; INSERT/DELETE/UPDATE buffer on this "
                "thread until COMMIT\n";
  return out;
}

Result<StatementResult> QueryService::HandleRollback() {
  std::lock_guard<std::mutex> lock(write_batch_mutex_);
  auto it = write_batches_.find(std::this_thread::get_id());
  if (it == write_batches_.end()) {
    return Status::InvalidArgument(
        "no open write batch on this thread (BEGIN WRITE first)");
  }
  size_t rows = 0;
  for (const auto& [table, buffered] : it->second.inserts) {
    rows += buffered.size();
  }
  for (const auto& [table, buffered] : it->second.deletes) {
    rows += buffered.size();
  }
  write_batches_.erase(it);
  StatementResult out;
  out.message =
      "write batch discarded (" + std::to_string(rows) + " buffered row(s))\n";
  return out;
}

Result<StatementResult> QueryService::HandleCommit() {
  // An open write batch takes precedence; BEGIN WRITE and BEGIN SNAPSHOT
  // are mutually exclusive per thread, so at most one of the two branches
  // has anything to commit.
  std::optional<Delta> batch;
  {
    std::lock_guard<std::mutex> lock(write_batch_mutex_);
    auto it = write_batches_.find(std::this_thread::get_id());
    if (it != write_batches_.end()) {
      batch = std::move(it->second);
      // Erase up front: a failed apply discards the batch (nothing was
      // published), rather than leaving it open to fail every retry.
      write_batches_.erase(it);
    }
  }
  if (batch.has_value()) {
    Clock::time_point stmt_start = Clock::now();
    QueryStats qs;
    AQV_ASSIGN_OR_RETURN(WriteApplied applied, ApplyWriteDelta(*batch, &qs));
    uint64_t apply_micros = ElapsedMicros(stmt_start);
    uint64_t attributed = qs.maintain_micros + qs.wal_commit_micros;
    qs.exec_micros = apply_micros > attributed ? apply_micros - attributed : 0;
    qs.rows_processed += applied.rows;
    qs.epoch = db_.epoch();
    qs.total_micros = apply_micros;
    MaybeRecordSlowStatement("COMMIT", qs);
    StatementResult out;
    out.message = std::to_string(applied.rows_inserted) +
                  " row(s) inserted / " +
                  std::to_string(applied.rows_deleted) +
                  " deleted across " + std::to_string(applied.tables) +
                  " table(s); " + std::to_string(applied.views_maintained) +
                  " view(s) maintained, " +
                  std::to_string(applied.views_recomputed) + " recomputed\n";
    return out;
  }
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  auto it = thread_snapshots_.find(std::this_thread::get_id());
  if (it == thread_snapshots_.end()) {
    return Status::InvalidArgument(
        "nothing to commit on this thread (BEGIN SNAPSHOT or BEGIN WRITE "
        "first)");
  }
  uint64_t epoch = it->second->epoch;
  thread_snapshots_.erase(it);
  StatementResult out;
  out.message = "snapshot at epoch " + std::to_string(epoch) + " released\n";
  return out;
}

Result<StatementResult> QueryService::Dispatch(const std::string& stmt,
                                               const std::string& upper) {
  if (upper == "STATS PROM") {
    StatementResult out;
    out.message = StatsPromText();
    return out;
  }
  if (StartsWith(upper, "STATS HISTORY")) {
    return HandleStatsHistory(TrimStatement(stmt.substr(13)));
  }
  if (StartsWith(upper, "STATS ATTRIBUTION")) {
    return HandleAttribution(TrimStatement(stmt.substr(17)));
  }
  if (StartsWith(upper, "MONITOR")) {
    return HandleMonitor(TrimStatement(stmt.substr(7)));
  }
  if (upper == "STATS") {
    StatementResult out;
    out.message = Stats().ToString();
    return out;
  }
  if (upper == "SLOWLOG") return HandleSlowLog();
  if (StartsWith(upper, "TRACE")) return HandleTrace(stmt);
  if (StartsWith(upper, "FAILPOINT")) return HandleFailpoint(stmt);
  if (upper == "BEGIN WRITE") return HandleBeginWrite();
  if (upper == "BEGIN SNAPSHOT" || upper == "BEGIN") {
    return HandleBeginSnapshot();
  }
  if (upper == "COMMIT") return HandleCommit();
  if (upper == "ROLLBACK") return HandleRollback();
  if (upper == "TABLES") return HandleListTables();
  if (upper == "VIEWS") return HandleListViews();
  if (upper == "CHECKPOINT") return HandleCheckpoint();
  if (upper == "SCRUB") return HandleScrub();
  // Writes and DDL are rejected while the calling thread has an open
  // snapshot: the pin is read-only by construction.
  bool is_dml = StartsWith(upper, "INSERT INTO") ||
                StartsWith(upper, "DELETE") || StartsWith(upper, "UPDATE ");
  bool is_write = StartsWith(upper, "CREATE ") || is_dml ||
                  StartsWith(upper, "REFRESH") || StartsWith(upper, "LOAD");
  if (is_write && ThreadSnapshot() != nullptr) {
    return Status::InvalidArgument(
        "writes are not allowed inside BEGIN SNAPSHOT; COMMIT first");
  }
  // Inside a write batch only DML (buffered) and reads are allowed: DDL,
  // REFRESH and LOAD would have to either see or ignore the uncommitted
  // rows, and neither is coherent.
  if (is_write && !is_dml && ThreadHasWriteBatch()) {
    return Status::InvalidArgument(
        "only INSERT/DELETE/UPDATE may run inside BEGIN WRITE; COMMIT or "
        "ROLLBACK first");
  }
  if (StartsWith(upper, "CREATE TABLE")) return HandleCreateTable(stmt);
  if (StartsWith(upper, "CREATE MATERIALIZED VIEW")) {
    return HandleCreateView(
        "CREATE " + stmt.substr(std::string("CREATE MATERIALIZED ").size()),
        /*materialized=*/true);
  }
  if (StartsWith(upper, "CREATE VIEW")) {
    return HandleCreateView(stmt, /*materialized=*/false);
  }
  if (StartsWith(upper, "INSERT INTO")) return HandleInsert(stmt);
  if (StartsWith(upper, "DELETE")) return HandleDelete(stmt);
  if (StartsWith(upper, "UPDATE ")) return HandleUpdate(stmt);
  if (StartsWith(upper, "REFRESH")) {
    return HandleRefresh(TrimStatement(stmt.substr(7)));
  }
  if (StartsWith(upper, "EXPLAIN ANALYZE")) {
    return HandleExplainAnalyze(TrimStatement(stmt.substr(15)));
  }
  if (StartsWith(upper, "EXPLAIN")) {
    return HandleExplain(TrimStatement(stmt.substr(7)));
  }
  if (StartsWith(upper, "WHY")) return HandleWhy(TrimStatement(stmt.substr(3)));
  if (StartsWith(upper, "SELECT")) return HandleSelect(stmt);
  if (StartsWith(upper, "LOAD")) return HandleLoad(stmt);
  if (StartsWith(upper, "SAVE")) return HandleSave(stmt);
  return Status::InvalidArgument("unrecognized statement: " + stmt);
}

std::vector<std::string> QueryService::SelectFootprint(
    const Query& query) const {
  std::vector<std::string> deps;
  CollectQueryDependencies(query, views_, &deps);
  // Base-table leaves of the query's closure.
  std::vector<std::string> base;
  for (const std::string& n : deps) {
    if (!views_.Has(n)) base.push_back(n);
  }
  // The rewriter can only substitute a materialized view whose base tables
  // all appear among the query's; include each such view's whole closure so
  // a cached plan's dependency set — closure(original) ∪ closure(chosen) —
  // is always covered by the held stripes, whatever plan wins.
  for (const std::string& view : views_.ViewNames()) {
    if (!db_.Has(view)) continue;
    std::vector<std::string> closure;
    CollectDependencies({view}, views_, &closure);
    bool subset = true;
    for (const std::string& n : closure) {
      if (views_.Has(n)) continue;
      if (std::find(base.begin(), base.end(), n) == base.end()) {
        subset = false;
        break;
      }
    }
    if (subset) deps.insert(deps.end(), closure.begin(), closure.end());
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

Result<PlanCache::EntryPtr> QueryService::PlanThroughCache(
    const Query& query, bool* cache_hit, uint64_t* optimize_micros,
    ExecContext* ctx, bool* degraded) {
  *cache_hit = false;
  if (optimize_micros != nullptr) *optimize_micros = 0;
  std::string key;
  if (options_.enable_plan_cache) {
    TraceSpan lookup("plan_cache.lookup");
    key = CanonicalCacheKey(query);
    PlanCache::EntryPtr cached = plan_cache_.Lookup(key);
    if (lookup.active()) lookup.AddAttr("hit", cached ? "1" : "0");
    if (cached) {
      *cache_hit = true;
      cache_hits_.Increment();
      return cached;
    }
  }
  Clock::time_point start = Clock::now();
  RewriteOptions rewrite = options_.rewrite;
  rewrite.quarantined_views = QuarantinedViews();
  Optimizer optimizer(&db_, &views_, &catalog_, rewrite);
  Result<OptimizeResult> optimized = optimizer.Optimize(query, ctx);
  uint64_t elapsed = ElapsedMicros(start);
  if (optimize_micros != nullptr) *optimize_micros = elapsed;
  optimize_latency_.Record(elapsed);
  cache_misses_.Increment();

  auto entry = std::make_shared<PlanCache::Entry>();
  if (!optimized.ok()) {
    const Status& s = optimized.status();
    bool resource = s.code() == StatusCode::kDeadlineExceeded ||
                    s.code() == StatusCode::kResourceExhausted;
    if (resource || !options_.degrade_on_failure) return s;
    // Degrade: the optimizer itself failed (e.g. an injected
    // "optimizer.optimize" fault), so serve the unrewritten query. The
    // entry is NOT inserted into the cache — the next statement gets a
    // fresh optimization attempt rather than a pinned degraded plan.
    degraded_fallbacks_.Increment();
    if (degraded != nullptr) *degraded = true;
    entry->plan = query;
    CollectQueryDependencies(query, views_, &entry->dependencies);
    std::sort(entry->dependencies.begin(), entry->dependencies.end());
    entry->dependencies.erase(
        std::unique(entry->dependencies.begin(), entry->dependencies.end()),
        entry->dependencies.end());
    return PlanCache::EntryPtr(std::move(entry));
  }
  OptimizeResult plan = *std::move(optimized);
  // Views skipped for per-view rewrite failures count toward quarantine.
  for (const std::string& view : plan.failed_views) ChargeViewFailure(view);
  entry->plan = std::move(plan.chosen);
  entry->used_materialized_view = plan.used_materialized_view;
  entry->rewritings_considered = plan.rewritings_considered;
  entry->cost_original = plan.cost_original;
  entry->cost_chosen = plan.cost_chosen;
  entry->dependencies = std::move(plan.dependencies);
  // Inserted while still holding the footprint stripes shared (see the class
  // comment): the entry's dependencies are a subset of the footprint, so a
  // writer's invalidation — which needs the written stripe exclusive —
  // cannot interleave between optimize and insert.
  if (options_.enable_plan_cache) plan_cache_.Insert(key, entry);
  return PlanCache::EntryPtr(std::move(entry));
}

Result<StatementResult> QueryService::SelectOnSnapshot(
    const std::string& stmt, const ServiceSnapshot& snap) {
  Clock::time_point stmt_start = Clock::now();
  ExecContext ctx;
  QueryStats qs;
  ctx.set_stats(&qs);
  if (options_.statement_deadline_micros > 0) {
    ctx.set_deadline_after_micros(options_.statement_deadline_micros);
  }
  if (options_.statement_row_budget > 0) {
    ctx.set_row_budget(options_.statement_row_budget);
  }
  TraceSpan span("snapshot_read");
  if (span.active()) span.AddAttr("epoch", snap.epoch);
  AQV_ASSIGN_OR_RETURN(Query query, ParseQuery(stmt, &snap.catalog));
  qs.parse_micros = ElapsedMicros(stmt_start);
  {
    // The current quarantine gates snapshot reads too: a pinned copy of a
    // salvaged-empty table is exactly the silent-wrong-rows hazard.
    std::vector<std::string> deps;
    CollectQueryDependencies(query, snap.views, &deps);
    AQV_RETURN_NOT_OK(CheckTableQuarantine(deps));
  }
  StatementResult out;
  // Always a fresh optimize: the plan cache tracks current state (and its
  // invalidation hooks fire on current-state writes), not the pinned epoch.
  Clock::time_point opt_start = Clock::now();
  Optimizer optimizer(&snap.db, &snap.views, &snap.catalog, options_.rewrite);
  Result<OptimizeResult> optimized = optimizer.Optimize(query, &ctx);
  OptimizeResult plan;
  if (optimized.ok()) {
    plan = *std::move(optimized);
  } else {
    const Status& s = optimized.status();
    bool resource = s.code() == StatusCode::kDeadlineExceeded ||
                    s.code() == StatusCode::kResourceExhausted;
    if (resource || !options_.degrade_on_failure) return s;
    // Degrade: serve the unrewritten query against the snapshot.
    degraded_fallbacks_.Increment();
    out.degraded = true;
    plan.chosen = query;
  }
  uint64_t optimize_micros = ElapsedMicros(opt_start);
  optimize_latency_.Record(optimize_micros);
  out.used_materialized_view = plan.used_materialized_view;
  if (plan.used_materialized_view) {
    out.message = "-- rewritten to use a materialized view:\n--   " +
                  ToSql(plan.chosen) + "\n";
    rewrites_applied_.Increment();
  } else {
    rewrites_skipped_.Increment();
  }
  Clock::time_point start = Clock::now();
  uint64_t exec_micros = 0;
  {
    TraceSpan exec_span("execute");
    Evaluator eval(&snap.db, &snap.views, options_.eval);
    eval.set_context(&ctx);
    Result<Table> result = eval.Execute(plan.chosen);
    if (!result.ok()) {
      const Status& s = result.status();
      bool resource = s.code() == StatusCode::kDeadlineExceeded ||
                      s.code() == StatusCode::kResourceExhausted;
      if (resource || !options_.degrade_on_failure ||
          !plan.used_materialized_view) {
        return s;
      }
      degraded_fallbacks_.Increment();
      ctx.ResetForRetry();
      Evaluator retry(&snap.db, &snap.views, options_.eval);
      retry.set_context(&ctx);
      result = retry.Execute(query);
      AQV_RETURN_NOT_OK(result.status());
      out.degraded = true;
      out.used_materialized_view = false;
      out.message += "-- degraded: plan failed (" + s.ToString() +
                     "); retried on the unrewritten query\n";
    }
    exec_micros = ElapsedMicros(start);
    if (exec_span.active()) exec_span.AddAttr("rows", result->num_rows());
    out.table = *std::move(result);
  }
  exec_latency_.Record(exec_micros);
  queries_served_.Increment();
  snapshot_reads_.Increment();
  qs.optimize_micros = optimize_micros;
  qs.exec_micros = exec_micros;
  qs.total_micros = ElapsedMicros(stmt_start);
  qs.fingerprint = QueryFingerprint(query);
  qs.epoch = snap.epoch;
  qs.degraded = out.degraded;
  MaybeRecordSlowStatement(stmt, qs);
  RecordStatementProfile(stmt, qs);
  return out;
}

Result<StatementResult> QueryService::HandleSelect(const std::string& stmt) {
  if (ServiceSnapshotPtr snap = ThreadSnapshot()) {
    return SelectOnSnapshot(stmt, *snap);
  }
  Clock::time_point stmt_start = Clock::now();
  // The statement's governance context: the deadline covers parse through
  // execution (including a degraded retry); the row budget is per
  // execution attempt. The attribution object rides on the context so the
  // evaluator (rows) and any stage that only sees the context can
  // contribute.
  ExecContext ctx;
  QueryStats qs;
  ctx.set_stats(&qs);
  if (options_.statement_deadline_micros > 0) {
    ctx.set_deadline_after_micros(options_.statement_deadline_micros);
  }
  if (options_.statement_row_budget > 0) {
    ctx.set_row_budget(options_.statement_row_budget);
  }
  LatchManager::Guard guard = latches_.StatementShared();
  AQV_ASSIGN_OR_RETURN(Query query, ParseQuery(stmt, &catalog_));
  qs.parse_micros = ElapsedMicros(stmt_start);
  {
    // Corruption quarantine: a query whose closure touches a quarantined
    // table gets a clean error instead of salvaged-empty rows.
    std::vector<std::string> deps;
    CollectQueryDependencies(query, views_, &deps);
    AQV_RETURN_NOT_OK(CheckTableQuarantine(deps));
  }
  {
    TraceSpan latch_span("latch");
    Clock::time_point latch_start = Clock::now();
    latches_.AcquireShared(&guard, SelectFootprint(query));
    qs.latch_micros = ElapsedMicros(latch_start);
    if (latch_span.active()) {
      latch_span.AddAttr("stripes", static_cast<uint64_t>(guard.stripes_held()));
      latch_span.AddAttr("epoch", db_.epoch());
    }
  }
  StatementResult out;
  uint64_t optimize_micros = 0;
  Clock::time_point plan_start = Clock::now();
  AQV_ASSIGN_OR_RETURN(
      PlanCache::EntryPtr entry,
      PlanThroughCache(query, &out.cache_hit, &optimize_micros, &ctx,
                       &out.degraded));
  // Attributed optimize time includes the cache probe, so a hit is cheap
  // but not free in the breakdown (optimize_micros alone is 0 on a hit).
  qs.optimize_micros = ElapsedMicros(plan_start);
  out.used_materialized_view = entry->used_materialized_view;
  if (entry->used_materialized_view) {
    out.message = "-- rewritten to use a materialized view:\n--   " +
                  ToSql(entry->plan) + "\n";
    rewrites_applied_.Increment();
  } else {
    rewrites_skipped_.Increment();
  }
  Clock::time_point start = Clock::now();
  uint64_t exec_micros = 0;
  {
    TraceSpan exec_span("execute");
    Evaluator eval(&db_, &views_, options_.eval);
    eval.set_context(&ctx);
    Result<Table> result = eval.Execute(entry->plan);
    if (!result.ok()) {
      const Status& s = result.status();
      bool resource = s.code() == StatusCode::kDeadlineExceeded ||
                      s.code() == StatusCode::kResourceExhausted;
      // A tripped deadline/budget is the governance verdict, not a plan
      // defect — surface it as-is (the RAII latch guard releases
      // everything). A real failure of a rewritten or cached plan degrades:
      // drop the cached entry, charge its views toward quarantine and retry
      // once on the unrewritten query under the same deadline.
      bool plan_differs = entry->used_materialized_view || out.cache_hit;
      if (resource || !options_.degrade_on_failure || !plan_differs) {
        return s;
      }
      if (options_.enable_plan_cache) {
        cache_invalidated_.Increment(
            plan_cache_.Erase(CanonicalCacheKey(query)));
      }
      for (const TableRef& ref : entry->plan.from) {
        if (views_.Has(ref.table)) ChargeViewFailure(ref.table);
      }
      degraded_fallbacks_.Increment();
      ctx.ResetForRetry();
      Evaluator retry(&db_, &views_, options_.eval);
      retry.set_context(&ctx);
      result = retry.Execute(query);
      AQV_RETURN_NOT_OK(result.status());
      out.degraded = true;
      out.used_materialized_view = false;
      out.message += "-- degraded: plan failed (" + s.ToString() +
                     "); retried on the unrewritten query\n";
    }
    exec_micros = ElapsedMicros(start);
    if (exec_span.active()) exec_span.AddAttr("rows", result->num_rows());
    out.table = *std::move(result);
  }
  exec_latency_.Record(exec_micros);
  queries_served_.Increment();
  qs.exec_micros = exec_micros;
  qs.total_micros = ElapsedMicros(stmt_start);
  qs.fingerprint = QueryFingerprint(query);
  qs.epoch = db_.epoch();
  qs.cache_hit = out.cache_hit;
  qs.degraded = out.degraded;
  MaybeRecordSlowStatement(stmt, qs);
  RecordStatementProfile(stmt, qs);
  return out;
}

Result<StatementResult> QueryService::HandleExplain(
    const std::string& select_stmt) {
  LatchManager::Guard guard = latches_.StatementShared();
  AQV_ASSIGN_OR_RETURN(Query query, ParseQuery(select_stmt, &catalog_));
  latches_.AcquireShared(&guard, SelectFootprint(query));
  StatementResult out;
  AQV_ASSIGN_OR_RETURN(PlanCache::EntryPtr entry,
                       PlanThroughCache(query, &out.cache_hit));
  out.used_materialized_view = entry->used_materialized_view;
  char buf[256];
  out.message = "original:  " + ToSql(query) + "\n";
  out.message += "chosen:    " + ToSql(entry->plan) + "\n";
  std::snprintf(buf, sizeof(buf),
                "cost:      %.0f -> %.0f (%d rewriting(s) considered%s)\n",
                entry->cost_original, entry->cost_chosen,
                entry->rewritings_considered,
                out.cache_hit ? ", plan cache hit" : "");
  out.message += buf;
  AQV_ASSIGN_OR_RETURN(std::string tree,
                       ExplainPlan(entry->plan, db_, &views_));
  out.message += tree;
  return out;
}

Result<StatementResult> QueryService::HandleExplainAnalyze(
    const std::string& select_stmt) {
  Clock::time_point stmt_start = Clock::now();
  ExecContext ctx;
  QueryStats qs;
  ctx.set_stats(&qs);
  LatchManager::Guard guard = latches_.StatementShared();
  AQV_ASSIGN_OR_RETURN(Query query, ParseQuery(select_stmt, &catalog_));
  qs.parse_micros = ElapsedMicros(stmt_start);
  {
    std::vector<std::string> deps;
    CollectQueryDependencies(query, views_, &deps);
    AQV_RETURN_NOT_OK(CheckTableQuarantine(deps));
  }
  Clock::time_point latch_start = Clock::now();
  latches_.AcquireShared(&guard, SelectFootprint(query));
  qs.latch_micros = ElapsedMicros(latch_start);
  StatementResult out;
  Clock::time_point plan_start = Clock::now();
  AQV_ASSIGN_OR_RETURN(PlanCache::EntryPtr entry,
                       PlanThroughCache(query, &out.cache_hit));
  qs.optimize_micros = ElapsedMicros(plan_start);
  out.used_materialized_view = entry->used_materialized_view;
  char buf[512];
  out.message = "original:  " + ToSql(query) + "\n";
  out.message += "chosen:    " + ToSql(entry->plan) + "\n";
  std::snprintf(buf, sizeof(buf),
                "cost:      %.0f -> %.0f (%d rewriting(s) considered%s)\n",
                entry->cost_original, entry->cost_chosen,
                entry->rewritings_considered,
                out.cache_hit ? ", plan cache hit" : "");
  out.message += buf;
  // Execute the chosen plan with the per-operator profile attached; the
  // rendered tree shows actual rows and wall time next to the stored
  // cardinalities the cost model estimated from.
  PlanProfile profile;
  Clock::time_point start = Clock::now();
  Evaluator eval(&db_, &views_, options_.eval);
  eval.set_profile(&profile);
  eval.set_context(&ctx);
  AQV_ASSIGN_OR_RETURN(Table result, eval.Execute(entry->plan));
  qs.exec_micros = ElapsedMicros(start);
  exec_latency_.Record(qs.exec_micros);
  queries_served_.Increment();
  qs.fingerprint = QueryFingerprint(query);
  qs.epoch = db_.epoch();
  qs.cache_hit = out.cache_hit;
  out.message += RenderAnalyzedPlan(profile);
  out.message +=
      "result: " + std::to_string(result.num_rows()) + " row(s)\n";
  // Per-statement attribution: disjoint phase times against the measured
  // wall clock (their sum accounts for all but dispatch overhead — E19
  // checks the gap stays within 10%), plus the I/O the statement caused.
  qs.total_micros = ElapsedMicros(stmt_start);
  uint64_t phases = qs.PhaseSumMicros();
  std::snprintf(
      buf, sizeof(buf),
      "attribution: wall=%lluus phases=%lluus (%.1f%%) parse=%lluus "
      "latch=%lluus rewrite=%lluus exec=%lluus maintain=%lluus "
      "wal_commit=%lluus\n"
      "counters:    rows=%llu epoch=%llu cache_hit=%d pool_hits=%llu "
      "pool_misses=%llu pages_read=%llu pages_written=%llu wal_bytes=%llu\n",
      static_cast<unsigned long long>(qs.total_micros),
      static_cast<unsigned long long>(phases),
      qs.total_micros == 0 ? 0.0
                           : 100.0 * static_cast<double>(phases) /
                                 static_cast<double>(qs.total_micros),
      static_cast<unsigned long long>(qs.parse_micros),
      static_cast<unsigned long long>(qs.latch_micros),
      static_cast<unsigned long long>(qs.optimize_micros),
      static_cast<unsigned long long>(qs.exec_micros),
      static_cast<unsigned long long>(qs.maintain_micros),
      static_cast<unsigned long long>(qs.wal_commit_micros),
      static_cast<unsigned long long>(qs.rows_processed),
      static_cast<unsigned long long>(qs.epoch), qs.cache_hit ? 1 : 0,
      static_cast<unsigned long long>(qs.buffer_pool_hits),
      static_cast<unsigned long long>(qs.buffer_pool_misses),
      static_cast<unsigned long long>(qs.pages_read),
      static_cast<unsigned long long>(qs.pages_written),
      static_cast<unsigned long long>(qs.wal_bytes));
  out.message += buf;
  RecordStatementProfile(select_stmt, qs);
  return out;
}

Result<StatementResult> QueryService::HandleTrace(const std::string& stmt) {
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
  Tracer& tracer = Tracer::Global();
  StatementResult out;
  if (tokens.size() >= 2 && tokens[1].IsKeyword("ON")) {
    tracer.Enable();
    out.message = "tracing enabled\n";
    return out;
  }
  if (tokens.size() >= 2 && tokens[1].IsKeyword("OFF")) {
    tracer.Disable();
    out.message = "tracing disabled\n";
    return out;
  }
  if (tokens.size() >= 2 && tokens[1].IsKeyword("CLEAR")) {
    tracer.Clear();
    out.message = "trace buffer cleared\n";
    return out;
  }
  if (tokens.size() >= 2 && tokens[1].IsKeyword("DUMP")) {
    size_t events = tracer.Snapshot().size();
    uint64_t dropped = tracer.dropped();
    std::string json = tracer.ChromeTraceJson();
    if (tokens.size() >= 3 && tokens[2].kind == TokenKind::kString) {
      std::ofstream file(tokens[2].text, std::ios::trunc);
      if (!file) {
        return Status::InvalidArgument("cannot open '" + tokens[2].text +
                                       "' for writing");
      }
      file << json;
      out.message = std::to_string(events) + " event(s) written to " +
                    tokens[2].text + " (" + std::to_string(dropped) +
                    " dropped); load in chrome://tracing or ui.perfetto.dev\n";
    } else {
      out.message = std::move(json);
    }
    return out;
  }
  return Status::InvalidArgument("usage: TRACE ON|OFF|CLEAR|DUMP ['file.json']");
}

Result<StatementResult> QueryService::HandleFailpoint(const std::string& stmt) {
  // FAILPOINT LIST | FAILPOINT CLEAR | FAILPOINT <name> <spec>
  // (names and specs are case-sensitive; see base/failpoint.h for the
  // spec grammar).
  std::string rest = TrimStatement(stmt.substr(std::string("FAILPOINT").size()));
  std::string upper = ToUpper(rest);
  FailpointRegistry& registry = FailpointRegistry::Global();
  StatementResult out;
  if (rest.empty() || upper == "LIST") {
    std::vector<FailpointRegistry::Info> armed = registry.List();
    if (armed.empty()) {
      out.message = "no failpoints armed\n";
      return out;
    }
    for (const FailpointRegistry::Info& info : armed) {
      out.message += "  " + info.name + " " + info.spec + " (evaluated " +
                     std::to_string(info.evaluations) + ", fired " +
                     std::to_string(info.fires) + ")\n";
    }
    return out;
  }
  if (upper == "CLEAR") {
    registry.ClearAll();
    out.message = "all failpoints cleared\n";
    return out;
  }
  size_t space = rest.find_first_of(" \t");
  if (space == std::string::npos) {
    return Status::InvalidArgument(
        "usage: FAILPOINT <name> <spec> | FAILPOINT LIST | FAILPOINT CLEAR");
  }
  std::string name = rest.substr(0, space);
  std::string spec = TrimStatement(rest.substr(space));
  AQV_RETURN_NOT_OK(registry.Set(name, spec));
  out.message = "failpoint " + name + " = " + spec + "\n";
  return out;
}

Result<StatementResult> QueryService::HandleSlowLog() const {
  StatementResult out;
  std::vector<SlowQueryRecord> records = SlowQueries();
  if (records.empty()) {
    out.message = "slow query log is empty\n";
    return out;
  }
  char buf[240];
  for (const SlowQueryRecord& r : records) {
    std::snprintf(buf, sizeof(buf),
                  "fp=%016llx epoch=%llu total=%lluus parse=%lluus "
                  "optimize=%lluus exec=%lluus maintain=%lluus "
                  "wal_commit=%lluus [cache %s]  ",
                  static_cast<unsigned long long>(r.fingerprint),
                  static_cast<unsigned long long>(r.epoch),
                  static_cast<unsigned long long>(r.total_micros),
                  static_cast<unsigned long long>(r.parse_micros),
                  static_cast<unsigned long long>(r.optimize_micros),
                  static_cast<unsigned long long>(r.exec_micros),
                  static_cast<unsigned long long>(r.maintain_micros),
                  static_cast<unsigned long long>(r.wal_commit_micros),
                  r.cache_hit ? "hit" : "miss");
    out.message += buf;
    out.message += r.statement + "\n";
  }
  return out;
}

namespace {

/// Optional trailing count in a statement tail ("", "5", "JSON 5").
/// Returns `fallback` when absent or unparsable.
size_t ParseCountArg(const std::string& rest, size_t fallback) {
  if (rest.empty()) return fallback;
  size_t pos = rest.find_last_of(" \t");
  std::string tail = pos == std::string::npos ? rest : rest.substr(pos + 1);
  char* end = nullptr;
  unsigned long long n = std::strtoull(tail.c_str(), &end, 10);
  if (end == tail.c_str() || *end != '\0') return fallback;
  return static_cast<size_t>(n);
}

/// One line per telemetry window: the rates and latency means an operator
/// scans for dips and spikes. Shared by STATS HISTORY and MONITOR.
std::string RenderWindowLine(const TelemetryWindow& w) {
  uint64_t stmts = w.CounterDelta("service.statements");
  uint64_t selects = w.CounterDelta("service.queries_served");
  uint64_t hits = w.CounterDelta("service.plan_cache.hits");
  uint64_t misses = w.CounterDelta("service.plan_cache.misses");
  uint64_t inserted = w.CounterDelta("service.rows_inserted_total");
  uint64_t fsyncs = w.CounterDelta("storage.wal_fsyncs");
  double hit_pct = hits + misses == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(hits) /
                             static_cast<double>(hits + misses);
  const TelemetryWindow::Hist* exec = w.Histogram("service.exec_latency");
  const TelemetryWindow::Hist* maintain =
      w.Histogram("service.maintain_latency");
  auto mean = [](const TelemetryWindow::Hist* h) {
    return h == nullptr || h->delta_count == 0
               ? 0.0
               : static_cast<double>(h->delta_sum_micros) /
                     static_cast<double>(h->delta_count);
  };
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "[%4llu] t=%lldms dur=%.1fms stmts=%llu sel=%llu hit=%.1f%% "
      "ins=%llu exec(n=%llu mean=%.0fus) maintain(n=%llu mean=%.0fus) "
      "fsync=%llu\n",
      static_cast<unsigned long long>(w.seq),
      static_cast<long long>(w.unix_millis),
      static_cast<double>(w.duration_micros()) / 1000.0,
      static_cast<unsigned long long>(stmts),
      static_cast<unsigned long long>(selects), hit_pct,
      static_cast<unsigned long long>(inserted),
      static_cast<unsigned long long>(exec ? exec->delta_count : 0),
      mean(exec),
      static_cast<unsigned long long>(maintain ? maintain->delta_count : 0),
      mean(maintain), static_cast<unsigned long long>(fsyncs));
  return buf;
}

}  // namespace

Result<StatementResult> QueryService::HandleStatsHistory(
    const std::string& rest) {
  std::string upper = ToUpper(rest);
  bool json = StartsWith(upper, "JSON");
  size_t n = ParseCountArg(rest, 0);
  StatementResult out;
  if (json) {
    out.message = telemetry_->HistoryJson(n) + "\n";
    return out;
  }
  std::vector<TelemetryWindowPtr> windows = telemetry_->History(n);
  char buf[200];
  std::snprintf(
      buf, sizeof(buf),
      "telemetry: %zu window(s) (interval=%lluus capacity=%zu sampled=%llu "
      "dropped=%llu sampler %s)\n",
      windows.size(),
      static_cast<unsigned long long>(telemetry_->options().interval_micros),
      telemetry_->options().capacity,
      static_cast<unsigned long long>(telemetry_->windows_sampled()),
      static_cast<unsigned long long>(telemetry_->windows_dropped()),
      telemetry_->running() ? "running" : "stopped");
  out.message = buf;
  if (windows.empty()) {
    out.message +=
        "no windows sampled yet (set "
        "ServiceOptions::telemetry_interval_micros or run MONITOR to cut "
        "one on demand)\n";
    return out;
  }
  for (const auto& w : windows) out.message += RenderWindowLine(*w);
  return out;
}

Result<StatementResult> QueryService::HandleMonitor(const std::string& rest) {
  size_t n = ParseCountArg(rest, 10);
  if (n == 0) n = 10;
  // A MONITOR is a demand sample: it closes the current window so the
  // dashboard always ends "now", with or without a background sampler.
  telemetry_->SampleNow();
  std::vector<TelemetryWindowPtr> windows = telemetry_->History(n);
  uint64_t stmts = 0, selects = 0, micros = 0;
  for (const auto& w : windows) {
    stmts += w->CounterDelta("service.statements");
    selects += w->CounterDelta("service.queries_served");
    micros += w->duration_micros();
  }
  double secs = micros == 0 ? 0.0 : static_cast<double>(micros) / 1e6;
  char buf[240];
  std::snprintf(
      buf, sizeof(buf),
      "MONITOR — last %zu window(s), %.2fs: %llu statement(s) (%.0f/s), "
      "%llu SELECT(s) (%.0f/s)%s\n",
      windows.size(), secs, static_cast<unsigned long long>(stmts),
      secs == 0.0 ? 0.0 : static_cast<double>(stmts) / secs,
      static_cast<unsigned long long>(selects),
      secs == 0.0 ? 0.0 : static_cast<double>(selects) / secs,
      telemetry_->running() ? "" : " [sampler off: windows cut on demand]");
  StatementResult out;
  out.message = buf;
  for (const auto& w : windows) out.message += RenderWindowLine(*w);
  return out;
}

Result<StatementResult> QueryService::HandleAttribution(
    const std::string& rest) const {
  size_t n = ParseCountArg(rest, 20);
  if (n == 0) n = 20;
  std::vector<FingerprintProfile> profiles = FingerprintProfiles();
  uint64_t overflow;
  {
    std::lock_guard<std::mutex> lock(profile_mutex_);
    overflow = profile_overflow_;
  }
  StatementResult out;
  out.message = "attribution: " + std::to_string(profiles.size()) +
                " fingerprint(s) tracked, " + std::to_string(overflow) +
                " overflow\n";
  if (profiles.size() > n) profiles.resize(n);
  char buf[320];
  for (const FingerprintProfile& p : profiles) {
    const QueryStats& t = p.totals;
    std::snprintf(
        buf, sizeof(buf),
        "fp=%016llx n=%llu cache_hits=%llu total=%lluus optimize=%lluus "
        "exec=%lluus maintain=%lluus wal=%lluus rows=%llu  ",
        static_cast<unsigned long long>(p.fingerprint),
        static_cast<unsigned long long>(p.count),
        static_cast<unsigned long long>(p.cache_hits),
        static_cast<unsigned long long>(t.total_micros),
        static_cast<unsigned long long>(t.optimize_micros),
        static_cast<unsigned long long>(t.exec_micros),
        static_cast<unsigned long long>(t.maintain_micros),
        static_cast<unsigned long long>(t.wal_commit_micros),
        static_cast<unsigned long long>(t.rows_processed));
    out.message += buf;
    out.message += p.example + "\n";
  }
  return out;
}

Result<StatementResult> QueryService::HandleWhy(const std::string& rest) {
  size_t space = rest.find(' ');
  if (space == std::string::npos) {
    return Status::InvalidArgument("usage: WHY <view> SELECT ...");
  }
  // No row data is read: the ddl latch (shared) freezes views_ and catalog_,
  // which is all the rewrite explanation needs.
  LatchManager::Guard guard = latches_.StatementShared();
  std::string name = rest.substr(0, space);
  AQV_ASSIGN_OR_RETURN(const ViewDef* view, views_.Get(name));
  AQV_ASSIGN_OR_RETURN(
      Query query, ParseQuery(TrimStatement(rest.substr(space + 1)), &catalog_));
  AQV_ASSIGN_OR_RETURN(RewriteExplanation explanation,
                       ExplainRewrite(query, *view, options_.rewrite));
  StatementResult out;
  out.message = explanation.ToString();
  return out;
}

Result<StatementResult> QueryService::HandleSave(const std::string& stmt) {
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
  if (tokens.size() < 4 || tokens[1].kind != TokenKind::kIdentifier ||
      !tokens[2].IsKeyword("TO") || tokens[3].kind != TokenKind::kString) {
    return Status::InvalidArgument("usage: SAVE R TO 'file.csv'");
  }
  LatchManager::Guard guard = latches_.StatementShared();
  std::vector<std::string> footprint;
  CollectDependencies({tokens[1].text}, views_, &footprint);
  AQV_RETURN_NOT_OK(CheckTableQuarantine(footprint));
  latches_.AcquireShared(&guard, footprint);
  Evaluator eval(&db_, &views_);
  AQV_ASSIGN_OR_RETURN(Table contents, eval.MaterializeView(tokens[1].text));
  AQV_RETURN_NOT_OK(WriteCsvFile(contents, tokens[3].text));
  StatementResult out;
  out.message = std::to_string(contents.num_rows()) + " row(s) written to " +
                tokens[3].text + "\n";
  return out;
}

Result<StatementResult> QueryService::HandleListTables() {
  LatchManager::Guard guard = latches_.StatementShared();
  // All stripes shared: the row counts below come from one consistent cut.
  latches_.AcquireAllShared(&guard);
  StatementResult out;
  for (const std::string& name : catalog_.TableNames()) {
    const TableDef* def = *catalog_.GetTable(name);
    Result<const Table*> t = db_.Get(name);
    out.message += "  " + name + "(" + Join(def->columns(), ", ") + ") — " +
                   std::to_string(t.ok() ? (*t)->num_rows() : 0) + " rows\n";
  }
  return out;
}

Result<StatementResult> QueryService::HandleListViews() {
  LatchManager::Guard guard = latches_.StatementShared();
  StatementResult out;
  for (const std::string& name : views_.ViewNames()) {
    const ViewDef* def = *views_.Get(name);
    bool materialized = db_.Has(name);
    out.message += "  " + name + (materialized ? " [materialized] AS " : " [virtual] AS ") +
                   ToSql(def->query) + "\n";
  }
  return out;
}

Result<StatementResult> QueryService::HandleCreateTable(
    const std::string& stmt) {
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
  size_t i = 2;  // CREATE TABLE
  if (tokens[i].kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument("expected a table name");
  }
  std::string name = tokens[i++].text;
  if (tokens[i++].kind != TokenKind::kLParen) {
    return Status::InvalidArgument("expected '(' after the table name");
  }
  std::vector<std::string> columns;
  while (tokens[i].kind == TokenKind::kIdentifier) {
    columns.push_back(tokens[i++].text);
    if (tokens[i].kind == TokenKind::kComma) ++i;
  }
  if (tokens[i++].kind != TokenKind::kRParen) {
    return Status::InvalidArgument("expected ')' after the column list");
  }
  TableDef def(name, columns);
  if (tokens[i].IsKeyword("KEY")) {
    ++i;
    if (tokens[i++].kind != TokenKind::kLParen) {
      return Status::InvalidArgument("expected '(' after KEY");
    }
    std::vector<std::string> key;
    while (tokens[i].kind == TokenKind::kIdentifier) {
      key.push_back(tokens[i++].text);
      if (tokens[i].kind == TokenKind::kComma) ++i;
    }
    if (tokens[i++].kind != TokenKind::kRParen) {
      return Status::InvalidArgument("expected ')' after the key columns");
    }
    AQV_RETURN_NOT_OK(def.AddKeyByName(key));
  }
  LatchManager::Guard guard = latches_.Ddl();
  AQV_RETURN_NOT_OK(catalog_.AddTable(def));
  db_.Put(name, Table(columns));
  // DDL hook: a new table can change any optimizer choice; drop everything.
  cache_invalidated_.Increment(plan_cache_.Clear());
  // The WAL logs row deltas, not DDL: durability of the new table comes
  // from checkpointing at the DDL point, under the same exclusive latch.
  AQV_RETURN_NOT_OK(CheckpointIfDurable());
  StatementResult out;
  out.message = "table " + name + " created\n";
  return out;
}

Result<StatementResult> QueryService::HandleCreateView(const std::string& stmt,
                                                       bool materialized) {
  LatchManager::Guard guard = latches_.Ddl();
  AQV_ASSIGN_OR_RETURN(ViewDef view, ParseView(stmt, &catalog_));
  std::string name = view.name;
  AQV_RETURN_NOT_OK(views_.Register(std::move(view)));
  // DDL hook: a new view makes new rewritings possible for cached misses
  // and can flip cost decisions, so the whole cache goes.
  cache_invalidated_.Increment(plan_cache_.Clear());
  StatementResult out;
  if (materialized) {
    AQV_ASSIGN_OR_RETURN(size_t rows, RefreshLatched(name));
    out.message =
        "view " + name + " materialized: " + std::to_string(rows) + " rows\n";
  } else {
    out.message = "view " + name + " registered (virtual)\n";
  }
  // View DDL is durable via checkpoint, like CREATE TABLE.
  AQV_RETURN_NOT_OK(CheckpointIfDurable());
  return out;
}

Result<StatementResult> QueryService::HandleInsert(const std::string& stmt) {
  Clock::time_point stmt_start = Clock::now();
  QueryStats qs;
  AQV_ASSIGN_OR_RETURN(InsertStatement insert, ParseInsert(stmt));
  qs.parse_micros = ElapsedMicros(stmt_start);
  const size_t rows = insert.rows.size();
  {
    // An open BEGIN WRITE batch on this thread buffers the rows; COMMIT
    // validates and applies them all at once.
    std::lock_guard<std::mutex> lock(write_batch_mutex_);
    auto it = write_batches_.find(std::this_thread::get_id());
    if (it != write_batches_.end()) {
      std::vector<Row>& buffered = it->second.inserts[insert.table];
      for (Row& row : insert.rows) buffered.push_back(std::move(row));
      StatementResult out;
      out.message = std::to_string(rows) + " row(s) buffered into " +
                    insert.table + " (COMMIT to apply)\n";
      return out;
    }
  }
  Delta delta;
  delta.inserts[insert.table] = std::move(insert.rows);
  Clock::time_point exec_start = Clock::now();
  AQV_ASSIGN_OR_RETURN(WriteApplied applied, ApplyWriteDelta(delta, &qs));
  // The write's "exec" phase is apply minus the attributed sub-phases so
  // the phases stay disjoint and their sum tracks the wall clock.
  uint64_t apply_micros = ElapsedMicros(exec_start);
  uint64_t attributed = qs.maintain_micros + qs.wal_commit_micros;
  qs.exec_micros = apply_micros > attributed ? apply_micros - attributed : 0;
  qs.rows_processed += applied.rows;
  qs.epoch = db_.epoch();
  qs.total_micros = ElapsedMicros(stmt_start);
  MaybeRecordSlowStatement(stmt, qs);  // fingerprint 0: writes aggregate only
  StatementResult out;
  out.message =
      std::to_string(rows) + " row(s) inserted into " + insert.table + "\n";
  return out;
}

namespace {

/// The identifier at `word_index` of a whitespace-split statement, or ""
/// when the statement is too short. Used to peek a DML target table name
/// before parsing, so a write aimed at a view gets a verb-accurate refusal
/// instead of the binder's generic unknown-table error.
std::string PeekDmlTarget(const std::string& stmt, size_t word_index) {
  size_t i = 0;
  size_t word = 0;
  const size_t n = stmt.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(stmt[i]))) ++i;
    size_t b = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(stmt[i]))) ++i;
    if (b == i) break;
    if (word == word_index) return stmt.substr(b, i - b);
    ++word;
  }
  return "";
}

}  // namespace

Result<StatementResult> QueryService::HandleDelete(const std::string& stmt) {
  Clock::time_point stmt_start = Clock::now();
  QueryStats qs;
  DeleteStatement del;
  {
    // Binding reads the catalog; the statement latch freezes it.
    LatchManager::Guard guard = latches_.StatementShared();
    std::string target = PeekDmlTarget(stmt, 2);  // DELETE FROM <t>
    if (!target.empty() && views_.Has(target)) {
      return Status::InvalidArgument("cannot DELETE from view '" + target +
                                     "'; write its base tables");
    }
    AQV_ASSIGN_OR_RETURN(del, ParseDelete(stmt, &catalog_));
  }
  qs.parse_micros = ElapsedMicros(stmt_start);
  Mutation mutation;
  mutation.kind = Mutation::Kind::kDelete;
  mutation.table = std::move(del.table);
  mutation.where = std::move(del.where);
  Result<StatementResult> out = ExecuteMutation(std::move(mutation), &qs);
  if (out.ok()) {
    qs.total_micros = ElapsedMicros(stmt_start);
    MaybeRecordSlowStatement(stmt, qs);
  }
  return out;
}

Result<StatementResult> QueryService::HandleUpdate(const std::string& stmt) {
  Clock::time_point stmt_start = Clock::now();
  QueryStats qs;
  UpdateStatement upd;
  {
    LatchManager::Guard guard = latches_.StatementShared();
    std::string target = PeekDmlTarget(stmt, 1);  // UPDATE <t>
    if (!target.empty() && views_.Has(target)) {
      return Status::InvalidArgument("cannot UPDATE view '" + target +
                                     "'; write its base tables");
    }
    AQV_ASSIGN_OR_RETURN(upd, ParseUpdate(stmt, &catalog_));
  }
  qs.parse_micros = ElapsedMicros(stmt_start);
  Mutation mutation;
  mutation.kind = Mutation::Kind::kUpdate;
  mutation.table = std::move(upd.table);
  mutation.where = std::move(upd.where);
  mutation.sets = std::move(upd.sets);
  Result<StatementResult> out = ExecuteMutation(std::move(mutation), &qs);
  if (out.ok()) {
    qs.total_micros = ElapsedMicros(stmt_start);
    MaybeRecordSlowStatement(stmt, qs);
  }
  return out;
}

Result<StatementResult> QueryService::ExecuteMutation(Mutation mutation,
                                                      QueryStats* qs) {
  const bool is_update = mutation.kind == Mutation::Kind::kUpdate;
  if (ThreadHasWriteBatch()) {
    // Buffer into the open batch: the mutation is evaluated against the
    // *committed* state now (same visibility rule as SELECT inside BEGIN
    // WRITE) and its delta rides the batch; COMMIT re-validates delete
    // containment against the then-current base, so a concurrent write
    // that removed a matched row fails the batch cleanly instead of
    // desyncing views.
    size_t matched = 0;
    Delta staged;
    {
      LatchManager::Guard guard = latches_.StatementShared();
      latches_.AcquireShared(&guard, {mutation.table});
      AQV_ASSIGN_OR_RETURN(staged, MaterializeMutation(mutation, db_, &matched));
    }
    std::lock_guard<std::mutex> lock(write_batch_mutex_);
    auto it = write_batches_.find(std::this_thread::get_id());
    if (it == write_batches_.end()) {
      return Status::InvalidArgument(
          "the write batch on this thread closed while the statement ran");
    }
    for (auto& [name, rows] : staged.inserts) {
      std::vector<Row>& buffered = it->second.inserts[name];
      for (Row& row : rows) buffered.push_back(std::move(row));
    }
    for (auto& [name, rows] : staged.deletes) {
      std::vector<Row>& buffered = it->second.deletes[name];
      for (Row& row : rows) buffered.push_back(std::move(row));
    }
    StatementResult out;
    out.message = std::to_string(matched) + " row(s) buffered to " +
                  (is_update ? "update in " : "delete from ") + mutation.table +
                  " (COMMIT to apply)\n";
    return out;
  }
  Clock::time_point exec_start = Clock::now();
  AQV_ASSIGN_OR_RETURN(WriteApplied applied, ApplyWrite(Delta{}, &mutation, qs));
  // The write's "exec" phase is apply minus the attributed sub-phases so
  // the phases stay disjoint and their sum tracks the wall clock.
  uint64_t apply_micros = ElapsedMicros(exec_start);
  uint64_t attributed = qs->maintain_micros + qs->wal_commit_micros;
  qs->exec_micros = apply_micros > attributed ? apply_micros - attributed : 0;
  qs->rows_processed += applied.rows;
  qs->epoch = db_.epoch();
  StatementResult out;
  out.message = std::to_string(applied.rows_deleted) + " row(s) " +
                (is_update ? "updated in " : "deleted from ") + mutation.table +
                "; " + std::to_string(applied.views_maintained) +
                " view(s) maintained, " +
                std::to_string(applied.views_recomputed) + " recomputed\n";
  return out;
}

Result<std::vector<QueryService::DependentView>>
QueryService::DependentViewsOf(const std::vector<std::string>& tables) const {
  std::vector<DependentView> dependents;
  for (const std::string& view : views_.ViewNames()) {
    // Only stored (materialized) views need write-path maintenance; virtual
    // views are recomputed on every read anyway.
    if (!db_.Has(view)) continue;
    std::vector<std::string> closure;
    CollectDependencies({view}, views_, &closure);
    bool touched = false;
    for (const std::string& t : tables) {
      if (std::find(closure.begin(), closure.end(), t) != closure.end()) {
        touched = true;
        break;
      }
    }
    if (touched) dependents.push_back({view, std::move(closure)});
  }
  // Upstream-first order: a dependent defined over another dependent must
  // refresh after its input. The registry rejects cyclic definitions, so
  // this terminates.
  std::vector<DependentView> ordered;
  std::vector<std::string> placed;
  auto is_pending = [&](const std::string& name) {
    if (std::find(placed.begin(), placed.end(), name) != placed.end()) {
      return false;
    }
    for (const DependentView& d : dependents) {
      if (d.name == name) return true;
    }
    return false;
  };
  while (ordered.size() < dependents.size()) {
    bool progressed = false;
    for (const DependentView& d : dependents) {
      if (std::find(placed.begin(), placed.end(), d.name) != placed.end()) {
        continue;
      }
      bool ready = true;
      for (const std::string& n : d.closure) {
        if (n != d.name && is_pending(n)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      ordered.push_back(d);
      placed.push_back(d.name);
      progressed = true;
    }
    if (!progressed) {
      return Status::Internal("cyclic materialized-view dependencies");
    }
  }
  return ordered;
}

Status QueryService::RecomputeViewInto(const std::string& name,
                                       Database* staging) {
  AQV_ASSIGN_OR_RETURN(const ViewDef* def, views_.Get(name));
  Evaluator fresh(staging, &views_);
  AQV_ASSIGN_OR_RETURN(Table contents, fresh.Execute(def->query));
  staging->Put(name, std::move(contents));
  return Status::OK();
}

namespace {

/// Renders a row as "(v1, v2, ...)" for write-path error messages.
std::string RowText(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

/// Multiset containment of the delta's deletes in base ∪ same-batch inserts.
/// ApplyDeltaToBase lands inserts before deletes, so an insert in the same
/// batch legitimately covers a delete of an identical row (the extremum-tie
/// write tests rely on that). A delete the available multiset cannot cover
/// is rejected here, before
/// anything is staged, logged or published — otherwise the base would drop
/// fewer rows than the maintainer subtracted and views would silently
/// desync from their bases.
Status ValidateDeleteContainment(const Delta& delta, const Database& db) {
  for (const auto& [name, dels] : delta.deletes) {
    if (dels.empty()) continue;
    // Histogram the (usually few) deletes, then drain it against the
    // available rows — same-batch inserts first, then the base, stopping as
    // soon as every delete is covered. A single-row delete touching a large
    // table ends the base scan at the first match instead of hashing the
    // whole table.
    std::unordered_map<Row, int64_t, RowHash, RowEq> needed;
    for (const Row& row : dels) ++needed[row];
    int64_t remaining = static_cast<int64_t>(dels.size());
    auto consume = [&](const Row& row) {
      auto it = needed.find(row);
      if (it == needed.end() || it->second <= 0) return;
      --it->second;
      --remaining;
    };
    auto ins = delta.inserts.find(name);
    if (ins != delta.inserts.end()) {
      for (const Row& row : ins->second) {
        if (remaining == 0) break;
        consume(row);
      }
    }
    if (remaining > 0) {
      if (TablePtr base = db.GetShared(name)) {
        for (const Row& row : base->rows()) {
          if (remaining == 0) break;
          consume(row);
        }
      }
    }
    if (remaining > 0) {
      for (const auto& [row, count] : needed) {
        if (count > 0) {
          return Status::InvalidArgument(
              "cannot delete row " + RowText(row) + " from '" + name +
              "': not present in the stored table");
        }
      }
    }
  }
  return Status::OK();
}

/// One UPDATE SET expression applied to one row. Arithmetic on NULL yields
/// NULL (SQL semantics); on a string it is an execution-time error;
/// INT64 op INT64 stays INT64, anything involving a DOUBLE promotes.
Result<Value> EvalSetExpr(const SetExpr& expr, const Row& row,
                          const ColumnIndexMap& layout) {
  if (expr.kind == SetExpr::Kind::kLiteral) return expr.literal;
  auto it = layout.find(expr.column);
  if (it == layout.end()) {
    return Status::Internal("unbound UPDATE source column '" + expr.column +
                            "'");
  }
  const Value& v = row[static_cast<size_t>(it->second)];
  if (expr.kind == SetExpr::Kind::kColumn) return v;
  if (v.is_null() || expr.literal.is_null()) return Value::Null();
  if (!v.is_numeric() || !expr.literal.is_numeric()) {
    return Status::InvalidArgument(
        "UPDATE arithmetic needs numeric operands; column '" + expr.column +
        "' holds " + v.ToString());
  }
  if (v.type() == ValueType::kInt64 &&
      expr.literal.type() == ValueType::kInt64) {
    int64_t a = v.int64();
    int64_t b = expr.literal.int64();
    switch (expr.op) {
      case '+':
        return Value::Int64(a + b);
      case '-':
        return Value::Int64(a - b);
      default:
        return Value::Int64(a * b);
    }
  }
  double a = v.AsDouble();
  double b = expr.literal.AsDouble();
  switch (expr.op) {
    case '+':
      return Value::Double(a + b);
    case '-':
      return Value::Double(a - b);
    default:
      return Value::Double(a * b);
  }
}

}  // namespace

Result<Delta> QueryService::MaterializeMutation(const Mutation& mutation,
                                                const Database& db,
                                                size_t* matched) const {
  Delta out;
  AQV_ASSIGN_OR_RETURN(const Table* table, db.Get(mutation.table));
  ColumnIndexMap layout;
  for (int i = 0; i < table->num_columns(); ++i) {
    layout[table->columns()[static_cast<size_t>(i)]] = i;
  }
  std::vector<Row> deleted;
  std::vector<Row> inserted;
  for (const Row& row : table->rows()) {
    bool match = true;
    for (const Predicate& p : mutation.where) {
      if (!EvalScalarPredicate(p, row, layout)) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    deleted.push_back(row);
    if (mutation.kind == Mutation::Kind::kUpdate) {
      Row updated = row;
      for (const Assignment& a : mutation.sets) {
        auto it = layout.find(a.column);
        if (it == layout.end()) {
          return Status::Internal("unbound UPDATE target column '" + a.column +
                                  "'");
        }
        // Assignments all read the OLD row (SQL semantics: SET a = b,
        // b = a swaps), so the source is `row`, never `updated`.
        AQV_ASSIGN_OR_RETURN(Value v, EvalSetExpr(a.expr, row, layout));
        updated[static_cast<size_t>(it->second)] = std::move(v);
      }
      inserted.push_back(std::move(updated));
    }
  }
  if (matched != nullptr) *matched = deleted.size();
  if (!deleted.empty()) {
    if (mutation.kind == Mutation::Kind::kUpdate) {
      out.inserts[mutation.table] = std::move(inserted);
    }
    out.deletes[mutation.table] = std::move(deleted);
  }
  return out;
}

Result<QueryService::WriteApplied> QueryService::ApplyWriteDelta(
    const Delta& delta, QueryStats* stats) {
  return ApplyWrite(delta, nullptr, stats);
}

Result<QueryService::WriteApplied> QueryService::ApplyWrite(
    const Delta& delta, const Mutation* mutation, QueryStats* stats) {
  WriteApplied applied;
  if (mutation == nullptr && delta.empty()) return applied;
  TraceSpan span("write_apply");
  // Backpressure gate BEFORE any latch: a writer stalled here holds
  // nothing, so the auto-checkpointer's exclusive ddl acquisition (which
  // shrinks the WAL and releases the stall) can always proceed.
  AQV_RETURN_NOT_OK(WaitOutBackpressure());
  LatchManager::Guard guard = latches_.StatementShared();

  // Validate targets and collect the written table names. The error verb
  // matches the side of the delta that hit the view: "cannot INSERT into
  // view" on the delete side would point the user at the wrong statement.
  std::vector<std::string> written;
  auto add_target = [&](const std::string& name, const char* verb) -> Status {
    if (views_.Has(name)) {
      return Status::InvalidArgument(std::string("cannot ") + verb +
                                     " view '" + name +
                                     "'; write its base tables");
    }
    if (!db_.Has(name)) {
      return Status::NotFound("table '" + name + "' not in database");
    }
    if (std::find(written.begin(), written.end(), name) == written.end()) {
      written.push_back(name);
    }
    return Status::OK();
  };
  for (const auto& [name, rows] : delta.inserts) {
    AQV_RETURN_NOT_OK(add_target(name, "INSERT into"));
  }
  for (const auto& [name, rows] : delta.deletes) {
    AQV_RETURN_NOT_OK(add_target(name, "DELETE from"));
  }
  if (mutation != nullptr) {
    AQV_RETURN_NOT_OK(add_target(
        mutation->table,
        mutation->kind == Mutation::Kind::kUpdate ? "UPDATE" : "DELETE from"));
  }
  applied.tables = written.size();
  // Writing into a quarantined table would mingle new rows with salvaged
  // (possibly empty) contents; refuse until a LOAD replaces it wholesale.
  AQV_RETURN_NOT_OK(CheckTableQuarantine(written));

  AQV_ASSIGN_OR_RETURN(std::vector<DependentView> dependents,
                       DependentViewsOf(written));

  // Latch footprint: written tables and every dependent view exclusive,
  // the dependents' closures (the tables a recompute reads) shared.
  std::vector<std::string> writes = written;
  std::vector<std::string> reads;
  for (const DependentView& d : dependents) {
    writes.push_back(d.name);
    reads.insert(reads.end(), d.closure.begin(), d.closure.end());
  }
  std::sort(writes.begin(), writes.end());
  writes.erase(std::unique(writes.begin(), writes.end()), writes.end());
  std::sort(reads.begin(), reads.end());
  reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
  latches_.AcquireWrite(&guard, writes, reads);
  if (span.active()) {
    span.AddAttr("tables", static_cast<uint64_t>(written.size()));
    span.AddAttr("dependents", static_cast<uint64_t>(dependents.size()));
  }

  // Materialize a DML mutation now, under the acquired write latches: the
  // WHERE predicate runs against the exact table version the delta will be
  // applied to, so the matched multiset cannot race a concurrent writer.
  Delta mutated;
  if (mutation != nullptr) {
    size_t matched = 0;
    AQV_ASSIGN_OR_RETURN(mutated,
                         MaterializeMutation(*mutation, db_, &matched));
  }
  const Delta& effective = mutation != nullptr ? mutated : delta;
  for (const auto& [name, rows] : effective.inserts) {
    applied.rows_inserted += rows.size();
  }
  for (const auto& [name, rows] : effective.deletes) {
    applied.rows_deleted += rows.size();
  }
  applied.rows = applied.rows_inserted + applied.rows_deleted;

  // A delete the base (plus this batch's inserts) cannot cover is rejected
  // before anything is staged, logged or published.
  AQV_RETURN_NOT_OK(ValidateDeleteContainment(effective, db_));
  // Oversized rows are refused HERE, when they arrive, not deferred to the
  // next CHECKPOINT: rows above the overflow-chain cap can never be made
  // durable, so accepting them would poison the checkpoint later. Checked
  // on the effective delta so UPDATE-transformed rows are covered too.
  if (storage_ != nullptr) {
    for (const auto& [name, rows] : effective.inserts) {
      for (const Row& row : rows) {
        AQV_RETURN_NOT_OK(StorageEngine::CheckRowSize(row));
      }
    }
  }
  // A mutation that matched nothing changes nothing: skip the COW copy, the
  // maintenance sweep, the WAL record and the epoch bump entirely.
  if (effective.empty()) return applied;

  // One COW copy per written table, however many rows the batch carries; a
  // fault injected here must leave the published state untouched.
  AQV_FAILPOINT("table.cow_copy");
  Database staging = db_.Snapshot();
  AQV_RETURN_NOT_OK(ApplyDeltaToBase(effective, &staging));

  // Bring every dependent view up to date in the staging state: fold the
  // delta in where the maintainer supports the view's shape, recompute from
  // the staged bases otherwise. db_ still holds the pre-delta state the
  // maintainer differences against.
  Clock::time_point maintain_start = Clock::now();
  std::vector<std::string> recomputed;
  for (const DependentView& d : dependents) {
    AQV_ASSIGN_OR_RETURN(const ViewDef* def, views_.Get(d.name));
    bool maintained = false;
    // The delta names base tables only, so the maintainer's telescoped
    // differencing sees no change for a view reading another view — those
    // must be recomputed, not silently no-opped.
    bool base_only = true;
    for (const TableRef& ref : def->query.from) {
      if (views_.Has(ref.table)) {
        base_only = false;
        break;
      }
    }
    if (base_only) {
      Result<IncrementalMaintainer> maintainer =
          IncrementalMaintainer::Create(*def, options_.eval);
      if (maintainer.ok()) {
        AQV_ASSIGN_OR_RETURN(const Table* current, db_.Get(d.name));
        Result<Table> fresh = maintainer->ApplyToCopy(effective, db_, *current);
        if (fresh.ok()) {
          staging.Put(d.name, *std::move(fresh));
          maintained = true;
        } else if (fresh.status().code() != StatusCode::kUnsupported) {
          return fresh.status();
        }
      } else if (maintainer.status().code() != StatusCode::kUnsupported) {
        return maintainer.status();
      }
    }
    if (maintained) {
      ++applied.views_maintained;
    } else {
      AQV_RETURN_NOT_OK(RecomputeViewInto(d.name, &staging));
      ++applied.views_recomputed;
      recomputed.push_back(d.name);
    }
  }
  uint64_t maintain_micros = ElapsedMicros(maintain_start);
  if (!dependents.empty()) {
    maintain_latency_.Record(maintain_micros);
  }
  if (stats != nullptr) stats->maintain_micros += maintain_micros;

  // The durability point: the delta is WAL-appended and fsynced BEFORE the
  // in-memory publication, so a commit the client saw acknowledged always
  // survives a crash. A commit that fails here publishes nothing — and if
  // the record still reached disk intact (a crash after the write, before
  // the ack), recovery replays it atomically; the client simply never
  // learned its fate, which is the usual commit-ack contract.
  if (storage_ != nullptr) {
    AQV_RETURN_NOT_OK(storage_->LogCommit(effective, stats));
  }

  // Publish base tables and views as ONE version swap at a single epoch:
  // snapshot readers see either the whole write or none of it.
  std::vector<std::pair<std::string, TablePtr>> publish;
  publish.reserve(writes.size());
  for (const std::string& name : writes) {
    publish.emplace_back(name, staging.GetShared(name));
  }
  db_.PutAll(std::move(publish));
  for (const std::string& name : writes) {
    cache_invalidated_.Increment(plan_cache_.InvalidateDependency(name));
  }
  // A recomputed view's contents are as fresh as a REFRESH would make them,
  // so it gets the same clean quarantine slate.
  for (const std::string& name : recomputed) ClearViewFailures(name);
  rows_inserted_.Increment(applied.rows_inserted);
  rows_deleted_.Increment(applied.rows_deleted);
  views_maintained_.Increment(applied.views_maintained);
  views_recomputed_.Increment(applied.views_recomputed);
  return applied;
}

Result<StatementResult> QueryService::HandleCheckpoint() {
  if (storage_ == nullptr) {
    return Status::InvalidArgument(
        "no durable storage attached (set ServiceOptions::storage_path, or "
        "start aqvsh with --db FILE)");
  }
  // The engine needs a quiesced database: the captured commit sequence must
  // match the captured data, so no commit may land between them. The
  // exclusive ddl latch waits out every in-flight statement.
  LatchManager::Guard guard = latches_.Ddl();
  AQV_RETURN_NOT_OK(CheckpointIfDurable());
  StatementResult out;
  out.message = "checkpoint complete at commit seq " +
                std::to_string(storage_->checkpoint_seq()) + " (" +
                std::to_string(db_.TableNames().size()) +
                " stored table(s), wal truncated)\n";
  return out;
}

Result<StatementResult> QueryService::HandleScrub() {
  if (storage_ == nullptr) {
    return Status::InvalidArgument(
        "no durable storage attached (set ServiceOptions::storage_path, or "
        "start aqvsh with --db FILE)");
  }
  AQV_ASSIGN_OR_RETURN(StorageEngine::ScrubReport report, storage_->Scrub());
  StatementResult out;
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "scrub: %llu page(s) checked, %llu corrupt (%llu directory); wal %llu "
      "record(s)%s\n",
      static_cast<unsigned long long>(report.pages_checked),
      static_cast<unsigned long long>(report.pages_corrupt),
      static_cast<unsigned long long>(report.directory_pages_corrupt),
      static_cast<unsigned long long>(report.wal_records),
      report.wal_mid_log_corruption ? " + MID-LOG CORRUPTION" : "");
  out.message = buf;
  for (const auto& [name, t] : report.tables) {
    out.message += "  " + name + ": " + std::to_string(t.pages) +
                   " page(s), " + std::to_string(t.corrupt_pages) +
                   " corrupt" + (t.corrupt_pages > 0 ? "  <-- damaged" : "") +
                   "\n";
  }
  if (report.pages_corrupt > 0) {
    // The checkpoint pages are a copy of the live in-memory tables: the
    // next CHECKPOINT rewrites every data page fresh, healing the rot.
    out.message +=
        "corrupt checkpoint page(s) found; run CHECKPOINT to rewrite them "
        "from the live copy\n";
  }
  if (report.wal_mid_log_corruption) {
    out.message += "wal: " + std::to_string(report.wal_suspect_records) +
                   " acknowledged record(s) stranded beyond a mid-log tear; "
                   "a restart will quarantine every table the log names\n";
  }
  std::vector<std::pair<std::string, std::string>> quarantined =
      QuarantinedTables();
  for (const auto& [name, reason] : quarantined) {
    out.message += "  quarantined: " + name + " — " + reason + "\n";
  }
  if (report.pages_corrupt == 0 && report.directory_pages_corrupt == 0 &&
      !report.wal_mid_log_corruption && quarantined.empty()) {
    out.message += "all clean\n";
  }
  return out;
}

void QueryService::AutoCheckpointLoop() {
  std::unique_lock<std::mutex> lock(checkpoint_mutex_);
  while (!stop_checkpointer_) {
    // Woken early by a stalled writer (WaitOutBackpressure) or shutdown;
    // otherwise polls, since LogCommit deliberately does not signal here.
    checkpoint_cv_.wait_for(lock, std::chrono::milliseconds(20),
                            [this] { return stop_checkpointer_; });
    if (stop_checkpointer_) break;
    if (storage_ == nullptr || !storage_->NeedsAutoCheckpoint()) continue;
    lock.unlock();
    Status taken = [this]() -> Status {
      // Fires once per trigger, BEFORE the quiesce: a chaos run can inject
      // an error (checkpoint skipped, retried next poll) or kill the
      // process at the exact moment auto-checkpoint decides to run.
      AQV_FAILPOINT("checkpoint.auto");
      LatchManager::Guard guard = latches_.Ddl();
      return CheckpointIfDurable();
    }();
    if (taken.ok()) {
      storage_auto_checkpoints_->Increment();
    } else {
      RecordError(taken);
    }
    lock.lock();
  }
}

Status QueryService::WaitOutBackpressure() {
  if (storage_ == nullptr || !storage_->OverBackpressureCap()) {
    return Status::OK();
  }
  storage_backpressure_waits_->Increment();
  checkpoint_cv_.notify_all();  // kick the checkpointer now, not next poll
  Clock::time_point deadline =
      Clock::now() +
      std::chrono::microseconds(options_.storage_backpressure_wait_micros);
  while (storage_->OverBackpressureCap()) {
    if (Clock::now() >= deadline) {
      return Status::Unavailable(
          "SERVER_BUSY: wal is " + std::to_string(storage_->wal_bytes()) +
          " bytes, over the " +
          std::to_string(storage_->options().backpressure_wal_bytes) +
          "-byte backpressure cap and the checkpointer has not caught up; "
          "retry later");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::OK();
}

Status QueryService::CheckTableQuarantine(
    const std::vector<std::string>& names) const {
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  if (table_quarantine_.empty()) return Status::OK();
  for (const std::string& name : names) {
    auto it = table_quarantine_.find(name);
    if (it != table_quarantine_.end()) {
      return Status::Unavailable(
          "'" + it->first + "' is quarantined: " + it->second +
          "; repair it with LOAD " + it->first + " FROM '<file.csv>'");
    }
  }
  return Status::OK();
}

bool QueryService::ClearTableQuarantine(const std::string& name) {
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  if (table_quarantine_.erase(name) == 0) return false;
  // Mirror every lift into the engine's persisted map, or the next
  // checkpoint would re-serialize the stale entry and restart would
  // resurrect a quarantine the repair already cleared.
  if (storage_ != nullptr) storage_->ClearQuarantinedTable(name);
  // Dependent views re-enter service once no quarantined base table remains
  // in their closure — the LOAD that lifted `name` just recomputed them.
  for (auto it = table_quarantine_.begin(); it != table_quarantine_.end();) {
    if (!views_.Has(it->first)) {
      ++it;
      continue;
    }
    std::vector<std::string> closure;
    CollectDependencies({it->first}, views_, &closure);
    bool dirty = false;
    for (const std::string& n : closure) {
      if (n == it->first || views_.Has(n)) continue;
      if (table_quarantine_.count(n) > 0) {
        dirty = true;
        break;
      }
    }
    if (dirty) {
      ++it;
    } else {
      if (storage_ != nullptr) storage_->ClearQuarantinedTable(it->first);
      it = table_quarantine_.erase(it);
    }
  }
  return true;
}

std::vector<std::pair<std::string, std::string>>
QueryService::QuarantinedTables() const {
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  return std::vector<std::pair<std::string, std::string>>(
      table_quarantine_.begin(), table_quarantine_.end());
}

Result<size_t> QueryService::RefreshLatched(const std::string& name) {
  AQV_FAILPOINT("service.refresh");
  if (!views_.Has(name)) {
    return Status::NotFound("no view named '" + name + "'");
  }
  AQV_ASSIGN_OR_RETURN(const ViewDef* def, views_.Get(name));
  Evaluator fresh(&db_, &views_);
  AQV_ASSIGN_OR_RETURN(Table contents, fresh.Execute(def->query));
  size_t rows = contents.num_rows();
  db_.Put(name, std::move(contents));
  // Write hook: the view's stored contents changed.
  cache_invalidated_.Increment(plan_cache_.InvalidateDependency(name));
  // A freshly materialized view gets a clean slate: REFRESH is the
  // operator's way out of quarantine.
  ClearViewFailures(name);
  return rows;
}

Result<StatementResult> QueryService::HandleRefresh(const std::string& name) {
  LatchManager::Guard guard = latches_.StatementShared();
  if (!views_.Has(name)) {
    return Status::NotFound("no view named '" + name + "'");
  }
  // The view itself is written; everything its definition reads (its
  // transitive closure) is read. A quarantined closure refuses: recomputing
  // from a salvaged-empty base would publish wrong rows as "fresh".
  std::vector<std::string> reads;
  CollectDependencies({name}, views_, &reads);
  AQV_RETURN_NOT_OK(CheckTableQuarantine(reads));
  latches_.AcquireWrite(&guard, {name}, reads);
  AQV_ASSIGN_OR_RETURN(size_t rows, RefreshLatched(name));
  StatementResult out;
  out.message =
      "view " + name + " materialized: " + std::to_string(rows) + " rows\n";
  return out;
}

Result<StatementResult> QueryService::HandleLoad(const std::string& stmt) {
  // LOAD <table> FROM '<path>'
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
  if (tokens.size() < 4 || tokens[1].kind != TokenKind::kIdentifier ||
      !tokens[2].IsKeyword("FROM") || tokens[3].kind != TokenKind::kString) {
    return Status::InvalidArgument("usage: LOAD R FROM 'file.csv'");
  }
  std::string name = tokens[1].text;
  // A LOAD over a view name would otherwise fall through to the new-table
  // DDL path (views live in the registry, not the catalog) and shadow the
  // view; refuse with the verb that matches the statement.
  if (views_.Has(name)) {
    return Status::InvalidArgument("cannot LOAD into view '" + name +
                                   "'; write its base tables");
  }
  AQV_ASSIGN_OR_RETURN(Table loaded, ReadCsvFile(tokens[3].text));
  size_t loaded_rows = loaded.num_rows();
  // Row-size gate at arrival time (durable services only): a row beyond the
  // overflow-chain cap could never be checkpointed or replayed, so the LOAD
  // is refused before anything is published.
  if (storage_attached()) {
    for (const Row& row : loaded.rows()) {
      AQV_RETURN_NOT_OK(StorageEngine::CheckRowSize(row));
    }
  }
  StatementResult out;
  // Replacing a table wholesale invalidates every dependent materialized
  // view with no delta to fold, so all of them are recomputed and published
  // with the new contents at one epoch (same freshness contract as INSERT).
  auto replace_with_dependents = [&](LatchManager::Guard* guard,
                                     bool latched) -> Status {
    AQV_ASSIGN_OR_RETURN(std::vector<DependentView> dependents,
                         DependentViewsOf({name}));
    if (latched) {
      std::vector<std::string> lwrites{name};
      std::vector<std::string> lreads;
      for (const DependentView& d : dependents) {
        lwrites.push_back(d.name);
        lreads.insert(lreads.end(), d.closure.begin(), d.closure.end());
      }
      latches_.AcquireWrite(guard, lwrites, lreads);
    }
    // WAL-log the replacement as delete-all + insert-all: replay applies
    // the inserts then removes one occurrence per old row, landing exactly
    // on the loaded contents. This keeps LOAD-over-existing-table durable
    // without a checkpoint (which would need full quiescence, and this
    // path holds only the table's own stripes).
    Delta replacement;
    if (storage_ != nullptr) {
      AQV_ASSIGN_OR_RETURN(const Table* current, db_.Get(name));
      replacement.deletes[name] = current->rows();
      replacement.inserts[name] = loaded.rows();
    }
    Database staging = db_.Snapshot();
    staging.Put(name, std::move(loaded));
    for (const DependentView& d : dependents) {
      AQV_RETURN_NOT_OK(RecomputeViewInto(d.name, &staging));
    }
    if (storage_ != nullptr) {
      AQV_RETURN_NOT_OK(storage_->LogCommit(replacement));
    }
    std::vector<std::pair<std::string, TablePtr>> publish;
    publish.emplace_back(name, staging.GetShared(name));
    for (const DependentView& d : dependents) {
      publish.emplace_back(d.name, staging.GetShared(d.name));
    }
    db_.PutAll(std::move(publish));
    cache_invalidated_.Increment(plan_cache_.InvalidateDependency(name));
    for (const DependentView& d : dependents) {
      cache_invalidated_.Increment(plan_cache_.InvalidateDependency(d.name));
      ClearViewFailures(d.name);
    }
    views_recomputed_.Increment(dependents.size());
    return Status::OK();
  };
  bool repaired = false;
  {
    // Fast path: the table exists, so this is a row write, not DDL.
    LatchManager::Guard guard = latches_.StatementShared();
    if (catalog_.HasTable(name)) {
      AQV_ASSIGN_OR_RETURN(const TableDef* def, catalog_.GetTable(name));
      if (def->num_columns() != loaded.num_columns()) {
        return Status::InvalidArgument("CSV arity does not match table '" +
                                       name + "'");
      }
      AQV_RETURN_NOT_OK(replace_with_dependents(&guard, /*latched=*/true));
      // A full replacement is the quarantine repair path: the table's
      // contents no longer owe anything to the corrupt durable state.
      repaired = ClearTableQuarantine(name);
      out.message = std::to_string(loaded_rows) + " row(s) loaded into " +
                    name + "\n";
      if (!repaired) return out;
    }
  }
  if (repaired) {
    // The WAL-logged replacement alone would not survive a restart: the
    // corrupt checkpoint pages are still on disk, so recovery would
    // re-derive the quarantine from them and discard the repair delta as
    // suspect. A checkpoint rewrites the damaged pages from the repaired
    // live contents and persists the cleared quarantine map. Quiesce first
    // — the repair above held only the table's own stripes.
    LatchManager::Guard ddl = latches_.Ddl();
    AQV_RETURN_NOT_OK(CheckpointIfDurable());
    out.message +=
        "quarantine repaired; checkpoint rewrote the damaged pages\n";
    return out;
  }
  // The table is new: schema change. Re-check under the ddl latch — another
  // thread may have created it between the two acquisitions.
  LatchManager::Guard guard = latches_.Ddl();
  if (!catalog_.HasTable(name)) {
    AQV_RETURN_NOT_OK(catalog_.AddTable(TableDef(name, loaded.columns())));
    out.message = "table " + name + " created from the CSV header\n";
    cache_invalidated_.Increment(plan_cache_.Clear());  // DDL hook
    out.message += std::to_string(loaded_rows) + " row(s) loaded into " +
                   name + "\n";
    db_.Put(name, std::move(loaded));
    // New table + its contents: DDL, so durability comes from a checkpoint.
    AQV_RETURN_NOT_OK(CheckpointIfDurable());
    return out;
  }
  AQV_ASSIGN_OR_RETURN(const TableDef* def, catalog_.GetTable(name));
  if (def->num_columns() != loaded.num_columns()) {
    return Status::InvalidArgument("CSV arity does not match table '" + name +
                                   "'");
  }
  // Ddl() is totally exclusive; no stripes needed.
  AQV_RETURN_NOT_OK(replace_with_dependents(&guard, /*latched=*/false));
  out.message += std::to_string(loaded_rows) + " row(s) loaded into " + name +
                 "\n";
  if (ClearTableQuarantine(name)) {
    // Already fully quiesced under Ddl(): persist the repair directly.
    AQV_RETURN_NOT_OK(CheckpointIfDurable());
    out.message +=
        "quarantine repaired; checkpoint rewrote the damaged pages\n";
  }
  return out;
}

}  // namespace aqv
