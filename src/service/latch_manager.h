#ifndef AQV_SERVICE_LATCH_MANAGER_H_
#define AQV_SERVICE_LATCH_MANAGER_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace aqv {

/// Two-level latching for the query service, replacing the single global
/// reader/writer latch of PR 1:
///
///   level 0 — one `ddl` shared_mutex. Every statement acquires it: shared
///     for anything that only reads or writes *rows* (SELECT, EXPLAIN,
///     INSERT, REFRESH, ...), exclusive for statements that change the
///     *schema* (CREATE TABLE/VIEW, LOAD, Bootstrap). Holding it shared
///     freezes the catalog and view registry, which is what makes it safe
///     to parse/bind a statement before knowing which tables it touches.
///
///   level 1 — `stripe_count` shared_mutexes, each covering the tables and
///     materialized views whose names hash onto it. After binding, a
///     statement acquires the stripes covering its footprint: shared for
///     reads, exclusive for the names it writes. Writes to table A no
///     longer block statements touching only table B (unless the two names
///     collide onto one stripe).
///
/// Deadlock freedom: every acquirer takes level 0 before level 1 and locks
/// its stripes in ascending index order (exclusive before shared on a tied
/// index); DDL takes level 0 exclusive and needs no stripes at all. All
/// orders are consistent with one global total order, so no cycle can form.
class LatchManager {
 public:
  static constexpr size_t kDefaultStripes = 16;

  explicit LatchManager(size_t stripe_count = kDefaultStripes);

  LatchManager(const LatchManager&) = delete;
  LatchManager& operator=(const LatchManager&) = delete;

  /// RAII ownership of one statement's latches. Movable; releases stripes
  /// in descending order, then the ddl latch, on destruction or Release().
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept;
    Guard& operator=(Guard&& other) noexcept;
    ~Guard() { Release(); }

    void Release();

    /// Number of level-1 stripes this guard holds.
    size_t stripes_held() const { return stripes_.size(); }
    /// True if any held stripe (or the ddl latch) is exclusive.
    bool exclusive() const;

   private:
    friend class LatchManager;

    enum class DdlMode : uint8_t { kNone, kShared, kExclusive };

    LatchManager* mgr_ = nullptr;
    DdlMode ddl_ = DdlMode::kNone;
    /// (stripe index, exclusive), strictly ascending by index.
    std::vector<std::pair<uint32_t, bool>> stripes_;
  };

  /// Level 0 shared — the pre-bind phase of every non-DDL statement. The
  /// caller parses/binds under this, then adds stripes with Acquire*.
  Guard StatementShared();

  /// Level 0 exclusive: total exclusivity, for schema changes. No stripes
  /// are needed (or taken) — nothing else can be running.
  Guard Ddl();

  /// Adds the stripes covering `names`, all shared, to `g` (which must hold
  /// the ddl latch shared and no stripes yet).
  void AcquireShared(Guard* g, const std::vector<std::string>& names);

  /// Adds the stripes covering `writes` exclusive and `reads` shared. A
  /// stripe named by both sides is taken exclusive.
  void AcquireWrite(Guard* g, const std::vector<std::string>& writes,
                    const std::vector<std::string>& reads);

  /// Adds every stripe, shared — the snapshot pin: waits out all in-flight
  /// writers, so the pinned table-version vector is transactionally
  /// consistent, then releases quickly.
  void AcquireAllShared(Guard* g);

  size_t stripe_count() const { return stripe_count_; }

  /// Stripe index covering `name` (stable hash, any thread).
  uint32_t StripeOf(const std::string& name) const;

 private:
  void AcquireStripes(Guard* g, std::vector<std::pair<uint32_t, bool>> want);

  size_t stripe_count_;
  std::shared_mutex ddl_;
  std::unique_ptr<std::shared_mutex[]> stripes_;
};

}  // namespace aqv

#endif  // AQV_SERVICE_LATCH_MANAGER_H_
