#include "service/latch_manager.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace aqv {

LatchManager::LatchManager(size_t stripe_count)
    : stripe_count_(stripe_count == 0 ? 1 : stripe_count),
      stripes_(std::make_unique<std::shared_mutex[]>(
          stripe_count == 0 ? 1 : stripe_count)) {}

uint32_t LatchManager::StripeOf(const std::string& name) const {
  return static_cast<uint32_t>(std::hash<std::string>{}(name) % stripe_count_);
}

LatchManager::Guard::Guard(Guard&& other) noexcept
    : mgr_(other.mgr_), ddl_(other.ddl_), stripes_(std::move(other.stripes_)) {
  other.mgr_ = nullptr;
  other.ddl_ = DdlMode::kNone;
  other.stripes_.clear();
}

LatchManager::Guard& LatchManager::Guard::operator=(Guard&& other) noexcept {
  if (this != &other) {
    Release();
    mgr_ = other.mgr_;
    ddl_ = other.ddl_;
    stripes_ = std::move(other.stripes_);
    other.mgr_ = nullptr;
    other.ddl_ = DdlMode::kNone;
    other.stripes_.clear();
  }
  return *this;
}

void LatchManager::Guard::Release() {
  if (mgr_ == nullptr) return;
  // Reverse acquisition order: stripes descending, then the ddl latch.
  for (auto it = stripes_.rbegin(); it != stripes_.rend(); ++it) {
    if (it->second) {
      mgr_->stripes_[it->first].unlock();
    } else {
      mgr_->stripes_[it->first].unlock_shared();
    }
  }
  stripes_.clear();
  switch (ddl_) {
    case DdlMode::kShared:
      mgr_->ddl_.unlock_shared();
      break;
    case DdlMode::kExclusive:
      mgr_->ddl_.unlock();
      break;
    case DdlMode::kNone:
      break;
  }
  ddl_ = DdlMode::kNone;
  mgr_ = nullptr;
}

bool LatchManager::Guard::exclusive() const {
  if (ddl_ == DdlMode::kExclusive) return true;
  for (const auto& [index, exclusive] : stripes_) {
    if (exclusive) return true;
  }
  return false;
}

LatchManager::Guard LatchManager::StatementShared() {
  Guard g;
  ddl_.lock_shared();
  g.mgr_ = this;
  g.ddl_ = Guard::DdlMode::kShared;
  return g;
}

LatchManager::Guard LatchManager::Ddl() {
  Guard g;
  ddl_.lock();
  g.mgr_ = this;
  g.ddl_ = Guard::DdlMode::kExclusive;
  return g;
}

void LatchManager::AcquireStripes(
    Guard* g, std::vector<std::pair<uint32_t, bool>> want) {
  assert(g->mgr_ == this && g->ddl_ == Guard::DdlMode::kShared &&
         g->stripes_.empty());
  // Canonical order: ascending index; on a tied index exclusive wins, then
  // duplicates collapse — one lock operation per stripe.
  std::sort(want.begin(), want.end(),
            [](const std::pair<uint32_t, bool>& a,
               const std::pair<uint32_t, bool>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second > b.second;
            });
  want.erase(std::unique(want.begin(), want.end(),
                         [](const std::pair<uint32_t, bool>& a,
                            const std::pair<uint32_t, bool>& b) {
                           return a.first == b.first;
                         }),
             want.end());
  for (const auto& [index, exclusive] : want) {
    if (exclusive) {
      stripes_[index].lock();
    } else {
      stripes_[index].lock_shared();
    }
    g->stripes_.emplace_back(index, exclusive);
  }
}

void LatchManager::AcquireShared(Guard* g,
                                 const std::vector<std::string>& names) {
  std::vector<std::pair<uint32_t, bool>> want;
  want.reserve(names.size());
  for (const std::string& name : names) {
    want.emplace_back(StripeOf(name), false);
  }
  AcquireStripes(g, std::move(want));
}

void LatchManager::AcquireWrite(Guard* g,
                                const std::vector<std::string>& writes,
                                const std::vector<std::string>& reads) {
  std::vector<std::pair<uint32_t, bool>> want;
  want.reserve(writes.size() + reads.size());
  for (const std::string& name : writes) {
    want.emplace_back(StripeOf(name), true);
  }
  for (const std::string& name : reads) {
    want.emplace_back(StripeOf(name), false);
  }
  AcquireStripes(g, std::move(want));
}

void LatchManager::AcquireAllShared(Guard* g) {
  std::vector<std::pair<uint32_t, bool>> want;
  want.reserve(stripe_count_);
  for (uint32_t i = 0; i < stripe_count_; ++i) want.emplace_back(i, false);
  AcquireStripes(g, std::move(want));
}

}  // namespace aqv
