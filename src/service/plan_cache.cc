#include "service/plan_cache.h"

#include <algorithm>

#include "base/failpoint.h"

namespace aqv {

namespace {

/// Lookup/Insert do not return Status, so injected faults here degrade
/// semantically instead of propagating: a faulted lookup is a miss (the
/// statement re-optimizes), a faulted insert skips caching (the next
/// statement re-optimizes). Both keep results correct — exactly the
/// contract the chaos differential harness checks.
bool FailpointFires(const char* name) {
  return FailpointRegistry::Global().any_armed() &&
         !FailpointRegistry::Global().Evaluate(name).ok();
}

}  // namespace

PlanCache::EntryPtr PlanCache::Lookup(const std::string& key) {
  if (FailpointFires("plan_cache.lookup")) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return it->second->second;
}

void PlanCache::Insert(const std::string& key, EntryPtr entry) {
  if (capacity_ == 0) return;
  if (FailpointFires("plan_cache.insert")) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t PlanCache::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return 0;
  lru_.erase(it->second);
  index_.erase(it);
  return 1;
}

size_t PlanCache::InvalidateDependency(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    const std::vector<std::string>& deps = it->second->dependencies;
    if (std::binary_search(deps.begin(), deps.end(), name)) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

size_t PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = lru_.size();
  index_.clear();
  lru_.clear();
  return dropped;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::vector<std::pair<std::string, PlanCache::EntryPtr>> PlanCache::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, EntryPtr>> out;
  out.reserve(lru_.size());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) out.push_back(*it);
  return out;
}

}  // namespace aqv
