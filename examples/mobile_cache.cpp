// Mobile-client scenario (Section 1: "access to local or cached
// materialized views may be cheaper than access to the underlying
// database").
//
// A mobile client executes queries against a remote server over a slow
// link, and caches every result as a materialized view. Before contacting
// the server, each new query is tested against the cache: if some cached
// view (or combination of views) answers it, the client evaluates locally.
// This example replays a small query workload, reports the cache hit rate,
// and verifies every cache-served answer against the ground truth.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "rewrite/rewriter.h"
#include "workload/random_db.h"

using namespace aqv;  // NOLINT: example brevity

namespace {

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

// The client: holds cached views (definitions + contents) and answers
// queries from the cache when the rewriter finds a usable combination.
class MobileClient {
 public:
  explicit MobileClient(const Database* server_db) : server_db_(server_db) {}

  // Runs a query: first tries the cache, falling back to the "server".
  // Returns the result and reports which path was taken.
  Table Run(const Query& query, bool* from_cache) {
    Rewriter rewriter(&cache_defs_);
    std::vector<std::string> used;
    Result<Query> rewritten =
        rewriter.RewriteIteratively(query, CachedNames(), &used);
    if (rewritten.ok() && !used.empty() && OnlyCachedTables(*rewritten)) {
      *from_cache = true;
      Evaluator eval(&cache_contents_, &cache_defs_);
      return Unwrap(eval.Execute(*rewritten), "evaluate from cache");
    }
    *from_cache = false;
    Evaluator eval(server_db_, nullptr);
    Table result = Unwrap(eval.Execute(query), "evaluate at server");
    CacheResult(query, result);
    return result;
  }

 private:
  std::vector<std::string> CachedNames() const {
    return cache_defs_.ViewNames();
  }

  // A rewriting is locally evaluable only if every FROM entry is a cached
  // view (partial rewritings would still need the server).
  bool OnlyCachedTables(const Query& q) const {
    for (const TableRef& t : q.from) {
      if (!cache_defs_.Has(t.table)) return false;
    }
    return true;
  }

  void CacheResult(const Query& query, const Table& result) {
    std::string name = "cache_" + std::to_string(next_id_++);
    if (cache_defs_.Register(ViewDef{name, query}).ok()) {
      Table stored(query.OutputColumns());
      for (const Row& row : result.rows()) stored.AddRowOrDie(row);
      cache_contents_.Put(name, std::move(stored));
    }
  }

  const Database* server_db_;
  ViewRegistry cache_defs_;   // definitions of cached results
  Database cache_contents_;   // their materialized contents
  int next_id_ = 0;
};

}  // namespace

int main() {
  // Server-side database: sensor readings per (device, hour).
  Catalog catalog;
  if (!catalog.AddTable(TableDef("Readings", {"Device", "Hour", "Temp", "Err"}))
           .ok()) {
    return 1;
  }
  Database server = MakeRandomDatabase(catalog, 50000, 24, 17);

  MobileClient client(&server);

  // The workload: the first queries populate the cache; later, narrower
  // queries are answered from it.
  std::vector<Query> workload;
  // 1. A broad per-device/hour summary (cache filler).
  workload.push_back(QueryBuilder()
                         .From("Readings", {"D1", "H1", "T1", "E1"})
                         .Select("D1")
                         .Select("H1")
                         .SelectAgg(AggFn::kSum, "T1", "temp_sum")
                         .SelectAgg(AggFn::kCount, "T1", "n")
                         .GroupBy("D1")
                         .GroupBy("H1")
                         .BuildOrDie());
  // 2. Coarser rollup per device: answerable from query 1's cached result
  //    by coalescing subgroups (Section 4).
  workload.push_back(QueryBuilder()
                         .From("Readings", {"D1", "H1", "T1", "E1"})
                         .Select("D1")
                         .SelectAgg(AggFn::kSum, "T1", "temp_sum")
                         .GroupBy("D1")
                         .BuildOrDie());
  // 3. Count of readings per device: recovered from the cached COUNTs.
  workload.push_back(QueryBuilder()
                         .From("Readings", {"D1", "H1", "T1", "E1"})
                         .Select("D1")
                         .SelectAgg(AggFn::kCount, "E1", "readings")
                         .GroupBy("D1")
                         .BuildOrDie());
  // 4. Average temperature per hour: AVG = SUM/COUNT from the cache.
  workload.push_back(QueryBuilder()
                         .From("Readings", {"D1", "H1", "T1", "E1"})
                         .Select("H1")
                         .SelectAgg(AggFn::kAvg, "T1", "avg_temp")
                         .GroupBy("H1")
                         .BuildOrDie());
  // 5. A query the cache cannot answer (needs the Err column's values).
  workload.push_back(QueryBuilder()
                         .From("Readings", {"D1", "H1", "T1", "E1"})
                         .Select("D1")
                         .SelectAgg(AggFn::kMax, "E1", "worst")
                         .GroupBy("D1")
                         .BuildOrDie());

  int hits = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    bool from_cache = false;
    Table answer = client.Run(workload[i], &from_cache);
    hits += from_cache;

    // Verify against ground truth computed directly at the server.
    Evaluator truth_eval(&server, nullptr);
    Table truth = Unwrap(truth_eval.Execute(workload[i]), "ground truth");
    bool correct = MultisetAlmostEqual(answer, truth);
    std::printf("Q%zu [%s] %-11s rows=%-5zu  %s\n", i + 1,
                correct ? "ok" : "WRONG", from_cache ? "from-cache" : "server",
                answer.num_rows(), ToSql(workload[i]).c_str());
    if (!correct) return 1;
  }
  std::printf("\ncache hit rate: %d/%zu\n", hits, workload.size());
  return hits >= 3 ? 0 : 1;  // queries 2-4 should all be cache hits
}
