// aqvsh — a tiny interactive shell, for poking at the rewriter the way a
// downstream user would. Since the service PR it is a thin REPL over
// src/service's QueryService: every statement is dispatched through the
// same thread-safe, plan-caching engine an embedding server would use.
// Reads statements from stdin (or a script passed as argv[1]); one
// statement per line, '#' comments. With --db FILE the service runs on
// the durable storage engine: committed INSERTs are WAL-logged, CHECKPOINT
// persists a consistent image, and a restart recovers tables, views,
// catalog, and plan cache from FILE.
//
//   CREATE TABLE R(A, B) [KEY(A)]
//   INSERT INTO R VALUES (1, 2), (3, 4)    -- maintains dependent views
//   DELETE FROM R WHERE A = 1              -- delete matching occurrences
//   UPDATE R SET B = B + 1 WHERE A = 3     -- delete+insert at one epoch
//   BEGIN WRITE ... COMMIT | ROLLBACK      -- batch DML, one publication
//   CREATE VIEW V AS SELECT ...            -- virtual view
//   CREATE MATERIALIZED VIEW V AS SELECT ...
//   REFRESH V                              -- recompute a materialized view
//   SELECT ...                             -- optimized + executed
//   EXPLAIN SELECT ...                     -- plan + rewrite decision
//   EXPLAIN ANALYZE SELECT ...             -- executed plan + actual rows/times
//   WHY V SELECT ...                       -- per-mapping usability trace
//   TRACE ON|OFF|CLEAR|DUMP ['trace.json'] -- span tracing (Chrome/Perfetto)
//   STATS                                  -- service runtime counters,
//                                             incl. mvcc.* version/pin gauges
//   STATS PROM                             -- Prometheus text exposition
//   STATS HISTORY [JSON] [n]               -- sampled telemetry windows
//   STATS ATTRIBUTION [n]                  -- per-fingerprint cost breakdown
//   MONITOR [n]                            -- cut a window now + recent rates
//   SLOWLOG                                -- slow-query log (see ServiceOptions)
//   FAILPOINT [LIST]                       -- armed fault-injection sites
//   FAILPOINT <name> error(10) | CLEAR     -- arm / disarm failpoints
//   TABLES | VIEWS | HELP | QUIT
//
// Example session:
//   CREATE TABLE Calls(Id, Plan, Year, Charge)
//   CREATE MATERIALIZED VIEW Earnings AS SELECT Plan_1, Year_1,
//     SUM(Charge_1) FROM Calls GROUPBY Plan_1, Year_1
//   SELECT Plan_1, SUM(Charge_1) FROM Calls WHERE Year_1 = 1995 GROUPBY Plan_1

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "base/strings.h"
#include "service/query_service.h"

using namespace aqv;  // NOLINT: example brevity

namespace {

class Shell {
 public:
  explicit Shell(ServiceOptions options) : service_(std::move(options)) {}

  // True when --db was given but the storage engine failed to open/recover.
  bool storage_failed() const {
    return !service_.storage_status().ok();
  }
  Status storage_status() const { return service_.storage_status(); }

  // Executes one statement; returns false on QUIT.
  bool Execute(const std::string& line) {
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') return true;
    std::string upper = ToUpper(trimmed);

    if (upper == "QUIT" || upper == "EXIT") return false;
    if (upper == "HELP") {
      Help();
      return true;
    }
    Result<StatementResult> result = service_.Execute(trimmed);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return true;
    }
    if (!result->message.empty()) std::printf("%s", result->message.c_str());
    if (result->table.has_value()) {
      std::printf("%s(%zu rows)\n", result->table->ToString(25).c_str(),
                  result->table->num_rows());
    }
    return true;
  }

 private:
  static std::string Trim(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r\n");
    size_t e = s.find_last_not_of(" \t\r\n;");
    if (b == std::string::npos) return "";
    return s.substr(b, e - b + 1);
  }

  void Help() {
    std::printf(
        "usage: aqvsh [--db FILE] [script]\n"
        "  --db FILE  durable mode: WAL-logged commits, crash recovery on start\n"
        "statements:\n"
        "  CREATE TABLE R(A, B) [KEY(A)]\n"
        "  INSERT INTO R VALUES (1, 'x'), (-2, NULL)  -- maintains dependent views\n"
        "  DELETE FROM R WHERE A = 1        -- removes every matching occurrence\n"
        "  UPDATE R SET B = B + 1 WHERE A = 3  -- delete+insert at one epoch\n"
        "  BEGIN WRITE | COMMIT | ROLLBACK  -- buffer DML, apply as one batch\n"
        "  BEGIN SNAPSHOT | COMMIT          -- pin reads to one epoch\n"
        "  CREATE [MATERIALIZED] VIEW V AS SELECT ...\n"
        "  REFRESH V | SELECT ... | EXPLAIN SELECT ... | WHY V SELECT ...\n"
        "  EXPLAIN ANALYZE SELECT ...       -- executes; actual rows + times\n"
        "  TRACE ON|OFF|CLEAR|DUMP ['trace.json']\n"
        "  LOAD R FROM 'file.csv' | SAVE R TO 'file.csv'\n"
        "  FAILPOINT [LIST] | FAILPOINT <name> <spec> | FAILPOINT CLEAR\n"
        "    spec: off | error[(P[,N])] | delay(U[,P[,N]])  (P=pct, U=usec)\n"
        "  CHECKPOINT                       -- flush pages + truncate WAL "
        "(--db only)\n"
        "  SCRUB                            -- verify page/WAL checksums + "
        "quarantine report (--db only)\n"
        "  STATS HISTORY [JSON] [n]         -- sampled telemetry windows\n"
        "  STATS ATTRIBUTION [n]            -- per-fingerprint cost breakdown\n"
        "  MONITOR [n]                      -- cut a window now + recent rates\n"
        "  STATS | STATS PROM               -- counters + mvcc.versions_alive /\n"
        "                                      mvcc.bytes_pinned per table\n"
        "  SLOWLOG | TABLES | VIEWS | HELP | QUIT\n");
  }

  QueryService service_;
};

}  // namespace

int main(int argc, char** argv) {
  ServiceOptions options;
  // Interactive shells want STATS HISTORY to have data without opting in;
  // the sampler is one thread cutting a window every 250 ms (see E19 for
  // its measured overhead).
  options.telemetry_interval_micros = 250'000;
  std::string script;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--db") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--db requires a file argument\n");
        return 1;
      }
      options.storage_path = argv[++i];
    } else if (arg.rfind("--db=", 0) == 0) {
      options.storage_path = arg.substr(5);
    } else {
      script = arg;
    }
  }

  std::istream* in = &std::cin;
  std::ifstream file;
  bool interactive = script.empty();
  if (!interactive) {
    file.open(script);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script.c_str());
      return 1;
    }
    in = &file;
  }

  Shell shell(options);
  if (!options.storage_path.empty() && shell.storage_failed()) {
    std::fprintf(stderr, "cannot open db %s: %s\n",
                 options.storage_path.c_str(),
                 shell.storage_status().ToString().c_str());
    return 1;
  }
  std::string line;
  if (interactive) std::printf("aqvsh — type HELP for statements\n");
  while (true) {
    if (interactive) std::printf("aqv> ");
    if (!std::getline(*in, line)) break;
    if (!interactive) std::printf("aqv> %s\n", line.c_str());
    if (!shell.Execute(line)) break;
  }
  return 0;
}
