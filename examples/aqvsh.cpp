// aqvsh — a tiny interactive shell around the library, for poking at the
// rewriter the way a downstream user would. Reads statements from stdin
// (or a script passed as argv[1]); one statement per line, '#' comments.
//
//   CREATE TABLE R(A, B) [KEY(A)]
//   INSERT INTO R VALUES (1, 2), (3, 4)
//   CREATE VIEW V AS SELECT ...            -- virtual view
//   CREATE MATERIALIZED VIEW V AS SELECT ...
//   REFRESH V                              -- recompute a materialized view
//   SELECT ...                             -- optimized + executed
//   EXPLAIN SELECT ...                     -- plan + rewrite decision
//   WHY V SELECT ...                       -- per-mapping usability trace
//   TABLES | VIEWS | HELP | QUIT
//
// Example session:
//   CREATE TABLE Calls(Id, Plan, Year, Charge)
//   CREATE MATERIALIZED VIEW Earnings AS SELECT Plan_1, Year_1,
//     SUM(Charge_1) FROM Calls GROUPBY Plan_1, Year_1
//   SELECT Plan_1, SUM(Charge_1) FROM Calls WHERE Year_1 = 1995 GROUPBY Plan_1

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/strings.h"
#include "catalog/catalog.h"
#include "exec/evaluator.h"
#include "exec/csv.h"
#include "exec/explain_plan.h"
#include "exec/table.h"
#include "ir/printer.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "rewrite/explain.h"
#include "rewrite/optimizer.h"

using namespace aqv;  // NOLINT: example brevity

namespace {

class Shell {
 public:
  // Executes one statement; returns false on QUIT.
  bool Execute(const std::string& line) {
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') return true;
    std::string upper = ToUpper(trimmed);

    if (upper == "QUIT" || upper == "EXIT") return false;
    if (upper == "HELP") {
      Help();
    } else if (upper == "TABLES") {
      ListTables();
    } else if (upper == "VIEWS") {
      ListViews();
    } else if (StartsWith(upper, "CREATE TABLE")) {
      Report(CreateTable(trimmed));
    } else if (StartsWith(upper, "CREATE MATERIALIZED VIEW")) {
      Report(CreateView(
          "CREATE " + trimmed.substr(std::string("CREATE MATERIALIZED ").size()),
          /*materialized=*/true));
    } else if (StartsWith(upper, "CREATE VIEW")) {
      Report(CreateView(trimmed, /*materialized=*/false));
    } else if (StartsWith(upper, "INSERT INTO")) {
      Report(Insert(trimmed));
    } else if (StartsWith(upper, "REFRESH")) {
      Report(Refresh(Trim(trimmed.substr(7))));
    } else if (StartsWith(upper, "EXPLAIN")) {
      Report(Explain(Trim(trimmed.substr(7))));
    } else if (StartsWith(upper, "WHY")) {
      Report(Why(Trim(trimmed.substr(3))));
    } else if (StartsWith(upper, "SELECT")) {
      Report(Select(trimmed));
    } else if (StartsWith(upper, "LOAD")) {
      Report(Load(trimmed));
    } else if (StartsWith(upper, "SAVE")) {
      Report(Save(trimmed));
    } else {
      std::printf("?? unrecognized statement (try HELP)\n");
    }
    return true;
  }

 private:
  static std::string Trim(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r\n");
    size_t e = s.find_last_not_of(" \t\r\n;");
    if (b == std::string::npos) return "";
    return s.substr(b, e - b + 1);
  }

  void Report(const Status& s) {
    if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
  }

  void Help() {
    std::printf(
        "statements:\n"
        "  CREATE TABLE R(A, B) [KEY(A)]\n"
        "  INSERT INTO R VALUES (1, 'x'), (2, 'y')\n"
        "  CREATE [MATERIALIZED] VIEW V AS SELECT ...\n"
        "  REFRESH V | SELECT ... | EXPLAIN SELECT ... | WHY V SELECT ...\n"
        "  LOAD R FROM 'file.csv' | SAVE R TO 'file.csv'\n"
        "  TABLES | VIEWS | HELP | QUIT\n");
  }

  void ListTables() {
    for (const std::string& name : catalog_.TableNames()) {
      const TableDef* def = *catalog_.GetTable(name);
      Result<const Table*> t = db_.Get(name);
      std::printf("  %s(%s) — %zu rows\n", name.c_str(),
                  Join(def->columns(), ", ").c_str(),
                  t.ok() ? (*t)->num_rows() : 0);
    }
  }

  void ListViews() {
    for (const std::string& name : views_.ViewNames()) {
      const ViewDef* def = *views_.Get(name);
      bool materialized = db_.Has(name);
      std::printf("  %s [%s] AS %s\n", name.c_str(),
                  materialized ? "materialized" : "virtual",
                  ToSql(def->query).c_str());
    }
  }

  Status CreateTable(const std::string& stmt) {
    AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
    size_t i = 2;  // CREATE TABLE
    if (tokens[i].kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected a table name");
    }
    std::string name = tokens[i++].text;
    if (tokens[i++].kind != TokenKind::kLParen) {
      return Status::InvalidArgument("expected '(' after the table name");
    }
    std::vector<std::string> columns;
    while (tokens[i].kind == TokenKind::kIdentifier) {
      columns.push_back(tokens[i++].text);
      if (tokens[i].kind == TokenKind::kComma) ++i;
    }
    if (tokens[i++].kind != TokenKind::kRParen) {
      return Status::InvalidArgument("expected ')' after the column list");
    }
    TableDef def(name, columns);
    if (tokens[i].IsKeyword("KEY")) {
      ++i;
      if (tokens[i++].kind != TokenKind::kLParen) {
        return Status::InvalidArgument("expected '(' after KEY");
      }
      std::vector<std::string> key;
      while (tokens[i].kind == TokenKind::kIdentifier) {
        key.push_back(tokens[i++].text);
        if (tokens[i].kind == TokenKind::kComma) ++i;
      }
      if (tokens[i++].kind != TokenKind::kRParen) {
        return Status::InvalidArgument("expected ')' after the key columns");
      }
      AQV_RETURN_NOT_OK(def.AddKeyByName(key));
    }
    AQV_RETURN_NOT_OK(catalog_.AddTable(def));
    db_.Put(name, Table(columns));
    std::printf("table %s created\n", name.c_str());
    return Status::OK();
  }

  Status Insert(const std::string& stmt) {
    AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
    size_t i = 2;  // INSERT INTO
    if (tokens[i].kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected a table name");
    }
    std::string name = tokens[i++].text;
    if (!tokens[i].IsKeyword("VALUES")) {
      return Status::InvalidArgument("expected VALUES");
    }
    ++i;
    AQV_ASSIGN_OR_RETURN(const Table* existing, db_.Get(name));
    Table updated = *existing;
    int inserted = 0;
    while (tokens[i].kind == TokenKind::kLParen) {
      ++i;
      Row row;
      while (tokens[i].kind != TokenKind::kRParen) {
        switch (tokens[i].kind) {
          case TokenKind::kInteger:
            row.push_back(Value::Int64(tokens[i].int_value));
            break;
          case TokenKind::kFloat:
            row.push_back(Value::Double(tokens[i].float_value));
            break;
          case TokenKind::kString:
            row.push_back(Value::String(tokens[i].text));
            break;
          case TokenKind::kIdentifier:
            if (tokens[i].IsKeyword("NULL")) {
              row.push_back(Value::Null());
              break;
            }
            [[fallthrough]];
          default:
            return Status::InvalidArgument("expected a literal in VALUES");
        }
        ++i;
        if (tokens[i].kind == TokenKind::kComma) ++i;
      }
      ++i;  // ')'
      AQV_RETURN_NOT_OK(updated.AddRow(std::move(row)));
      ++inserted;
      if (tokens[i].kind == TokenKind::kComma) ++i;
    }
    db_.Put(name, std::move(updated));
    std::printf("%d row(s) inserted into %s\n", inserted, name.c_str());
    return Status::OK();
  }

  Status CreateView(const std::string& stmt, bool materialized) {
    AQV_ASSIGN_OR_RETURN(ViewDef view, ParseView(stmt, &catalog_));
    std::string name = view.name;
    AQV_RETURN_NOT_OK(views_.Register(std::move(view)));
    if (materialized) {
      AQV_RETURN_NOT_OK(Refresh(name));
    } else {
      std::printf("view %s registered (virtual)\n", name.c_str());
    }
    return Status::OK();
  }

  Status Refresh(const std::string& name) {
    if (!views_.Has(name)) {
      return Status::NotFound("no view named '" + name + "'");
    }
    // Recompute against the current base tables.
    Database base = db_;
    AQV_ASSIGN_OR_RETURN(const ViewDef* def, views_.Get(name));
    Evaluator fresh(&base, &views_);
    AQV_ASSIGN_OR_RETURN(Table contents, fresh.Execute(def->query));
    std::printf("view %s materialized: %zu rows\n", name.c_str(),
                contents.num_rows());
    db_.Put(name, std::move(contents));
    return Status::OK();
  }

  Status Select(const std::string& stmt) {
    AQV_ASSIGN_OR_RETURN(Query query, ParseQuery(stmt, &catalog_));
    Optimizer optimizer(&db_, &views_, &catalog_, options_);
    AQV_ASSIGN_OR_RETURN(OptimizeResult plan, optimizer.Optimize(query));
    if (plan.used_materialized_view) {
      std::printf("-- rewritten to use a materialized view:\n--   %s\n",
                  ToSql(plan.chosen).c_str());
    }
    Evaluator eval(&db_, &views_);
    AQV_ASSIGN_OR_RETURN(Table result, eval.Execute(plan.chosen));
    std::printf("%s(%zu rows)\n", result.ToString(25).c_str(),
                result.num_rows());
    return Status::OK();
  }

  Status Explain(const std::string& select_stmt) {
    AQV_ASSIGN_OR_RETURN(Query query, ParseQuery(select_stmt, &catalog_));
    Optimizer optimizer(&db_, &views_, &catalog_, options_);
    AQV_ASSIGN_OR_RETURN(OptimizeResult plan, optimizer.Optimize(query));
    std::printf("original:  %s\n", ToSql(query).c_str());
    std::printf("chosen:    %s\n", ToSql(plan.chosen).c_str());
    std::printf("cost:      %.0f -> %.0f (%d rewriting(s) considered)\n",
                plan.cost_original, plan.cost_chosen,
                plan.rewritings_considered);
    AQV_ASSIGN_OR_RETURN(std::string tree,
                         ExplainPlan(plan.chosen, db_, &views_));
    std::printf("%s", tree.c_str());
    return Status::OK();
  }

  Status Load(const std::string& stmt) {
    // LOAD <table> FROM '<path>'
    AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
    if (tokens.size() < 4 || tokens[1].kind != TokenKind::kIdentifier ||
        !tokens[2].IsKeyword("FROM") || tokens[3].kind != TokenKind::kString) {
      return Status::InvalidArgument("usage: LOAD R FROM 'file.csv'");
    }
    std::string name = tokens[1].text;
    AQV_ASSIGN_OR_RETURN(Table loaded, ReadCsvFile(tokens[3].text));
    if (!catalog_.HasTable(name)) {
      AQV_RETURN_NOT_OK(catalog_.AddTable(TableDef(name, loaded.columns())));
      std::printf("table %s created from the CSV header\n", name.c_str());
    } else {
      AQV_ASSIGN_OR_RETURN(const TableDef* def, catalog_.GetTable(name));
      if (def->num_columns() != loaded.num_columns()) {
        return Status::InvalidArgument("CSV arity does not match table '" +
                                       name + "'");
      }
    }
    std::printf("%zu row(s) loaded into %s\n", loaded.num_rows(), name.c_str());
    db_.Put(name, std::move(loaded));
    return Status::OK();
  }

  Status Save(const std::string& stmt) {
    // SAVE <table-or-view> TO '<path>'
    AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stmt));
    if (tokens.size() < 4 || tokens[1].kind != TokenKind::kIdentifier ||
        !tokens[2].IsKeyword("TO") || tokens[3].kind != TokenKind::kString) {
      return Status::InvalidArgument("usage: SAVE R TO 'file.csv'");
    }
    Evaluator eval(&db_, &views_);
    AQV_ASSIGN_OR_RETURN(Table contents, eval.MaterializeView(tokens[1].text));
    AQV_RETURN_NOT_OK(WriteCsvFile(contents, tokens[3].text));
    std::printf("%zu row(s) written to %s\n", contents.num_rows(),
                tokens[3].text.c_str());
    return Status::OK();
  }

  Status Why(const std::string& rest) {
    // WHY <view> SELECT ...
    size_t space = rest.find(' ');
    if (space == std::string::npos) {
      return Status::InvalidArgument("usage: WHY <view> SELECT ...");
    }
    std::string name = rest.substr(0, space);
    AQV_ASSIGN_OR_RETURN(const ViewDef* view, views_.Get(name));
    AQV_ASSIGN_OR_RETURN(Query query,
                         ParseQuery(Trim(rest.substr(space + 1)), &catalog_));
    AQV_ASSIGN_OR_RETURN(RewriteExplanation explanation,
                         ExplainRewrite(query, *view, options_));
    std::printf("%s", explanation.ToString().c_str());
    return Status::OK();
  }

  Catalog catalog_;
  Database db_;
  ViewRegistry views_;
  RewriteOptions options_ = [] {
    RewriteOptions o;
    o.use_key_information = true;
    return o;
  }();
};

}  // namespace

int main(int argc, char** argv) {
  std::istream* in = &std::cin;
  std::ifstream file;
  bool interactive = argc <= 1;
  if (!interactive) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = &file;
  }

  Shell shell;
  std::string line;
  if (interactive) std::printf("aqvsh — type HELP for statements\n");
  while (true) {
    if (interactive) std::printf("aqv> ");
    if (!std::getline(*in, line)) break;
    if (!interactive) std::printf("aqv> %s\n", line.c_str());
    if (!shell.Execute(line)) break;
  }
  return 0;
}
