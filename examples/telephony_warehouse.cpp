// Data-warehouse scenario (the paper's motivating Example 1.1).
//
// A telephone company keeps a huge Calls table and maintains a monthly
// earnings summary per calling plan as a materialized view V1. The query
// "which plans earned less than X dollars in 1995?" can be answered either
// from the base tables or — after the rewriting of Section 4 — from the
// summary view, which is orders of magnitude smaller. This example builds
// the warehouse, performs the rewriting, and times both evaluations.
//
// Usage: telephony_warehouse [num_calls]   (default 200000)

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "exec/evaluator.h"
#include "ir/printer.h"
#include "rewrite/cost.h"
#include "rewrite/rewriter.h"
#include "workload/telephony.h"

using namespace aqv;  // NOLINT: example brevity

namespace {

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  TelephonyParams params;
  params.num_calls = argc > 1 ? std::atoi(argv[1]) : 200000;
  params.earnings_threshold = 0.5 * params.max_charge * params.num_calls /
                              (params.num_plans * params.num_years);
  std::printf("building warehouse: %d calls, %d plans, %d customers...\n",
              params.num_calls, params.num_plans, params.num_customers);
  TelephonyWorkload w = MakeTelephonyWorkload(params);

  std::printf("\nQ:  %s\n", ToSql(w.query).c_str());
  std::printf("V1: %s\n",
              ToSql(*Unwrap(w.views.Get("V1"), "get view")).c_str());

  // Maintain the materialized view, as the warehouse would.
  {
    Evaluator eval(&w.db, &w.views);
    auto start = std::chrono::steady_clock::now();
    Table v1 = Unwrap(eval.MaterializeView("V1"), "materialize V1");
    std::printf("\nmaterialized V1: %zu rows (Calls has %d) in %.1f ms\n",
                v1.num_rows(), params.num_calls, MillisSince(start));
    w.db.Put("V1", std::move(v1));
  }

  // Rewrite Q to use V1 (Section 4: SUM of monthly SUMs, residual
  // Year = 1995, HAVING carried over).
  Rewriter rewriter(&w.views);
  Query rewritten = Unwrap(rewriter.RewriteUsingView(w.query, "V1"),
                           "rewrite Q with V1");
  std::printf("\nQ': %s\n", ToSql(rewritten).c_str());

  // The cost model agrees the rewriting is the cheaper plan.
  CostModel model;
  std::printf("\nestimated cost: Q = %.0f, Q' = %.0f\n",
              model.Estimate(w.query, w.db), model.Estimate(rewritten, w.db));

  // Time both evaluations.
  Evaluator eval(&w.db, &w.views);
  auto start = std::chrono::steady_clock::now();
  Table base = Unwrap(eval.Execute(w.query), "run Q");
  double base_ms = MillisSince(start);

  start = std::chrono::steady_clock::now();
  Table via_view = Unwrap(eval.Execute(rewritten), "run Q'");
  double view_ms = MillisSince(start);

  std::printf("\nQ  over base tables: %8.2f ms  (%zu qualifying plans)\n",
              base_ms, base.num_rows());
  std::printf("Q' over summary view: %7.2f ms  (%zu qualifying plans)\n",
              view_ms, via_view.num_rows());
  std::printf("speedup: %.1fx\n", base_ms / view_ms);
  std::printf("answers agree (within float tolerance): %s\n",
              MultisetAlmostEqual(base, via_view) ? "yes" : "NO (bug!)");

  std::printf("\nunderperforming plans in 1995 (threshold $%.0f):\n%s",
              params.earnings_threshold, via_view.ToString(10).c_str());
  return MultisetAlmostEqual(base, via_view) ? 0 : 1;
}
