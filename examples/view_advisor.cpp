// View-selection advisor (the paper's stated future work: "developing
// strategies for determining which views to cache").
//
// Given the telephony warehouse and a workload of analyst queries, the
// advisor derives candidate summary views from the queries themselves,
// measures footprints and benefits, and recommends which to materialize
// under a space budget. The example then materializes the recommendation
// and shows the workload running through the optimizer.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "advisor/view_selection.h"
#include "exec/evaluator.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "rewrite/optimizer.h"
#include "workload/telephony.h"

using namespace aqv;  // NOLINT: example brevity

namespace {

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

}  // namespace

int main() {
  TelephonyParams params;
  params.num_calls = 100000;
  TelephonyWorkload w = MakeTelephonyWorkload(params);

  // The analyst workload: earnings per plan for each year, a monthly
  // seasonal profile, and per-customer call counts.
  std::vector<Query> workload;
  for (int year : {1994, 1995, 1996}) {
    workload.push_back(
        QueryBuilder()
            .From("Calls", {"Id", "Cust", "Plan", "Day", "Month", "Year",
                            "Charge"})
            .Select("Plan")
            .SelectAgg(AggFn::kSum, "Charge", "total")
            .WhereConst("Year", CmpOp::kEq, Value::Int64(year))
            .GroupBy("Plan")
            .BuildOrDie());
  }
  workload.push_back(
      QueryBuilder()
          .From("Calls",
                {"Id", "Cust", "Plan", "Day", "Month", "Year", "Charge"})
          .Select("Month")
          .SelectAgg(AggFn::kAvg, "Charge", "avg_charge")
          .GroupBy("Month")
          .BuildOrDie());
  workload.push_back(
      QueryBuilder()
          .From("Calls",
                {"Id", "Cust", "Plan", "Day", "Month", "Year", "Charge"})
          .Select("Cust")
          .SelectAgg(AggFn::kCount, "Id", "calls")
          .GroupBy("Cust")
          .BuildOrDie());

  std::printf("workload (%zu queries):\n", workload.size());
  for (const Query& q : workload) std::printf("  %s\n", ToSql(q).c_str());

  AdvisorOptions options;
  options.space_budget_rows = 5000;
  ViewAdvisor advisor(&w.db, options);
  AdvisorReport report =
      Unwrap(advisor.Recommend(workload), "advisor recommendation");
  std::printf("\n%s", report.ToString().c_str());

  // Materialize the recommendation and run the workload through the
  // optimizer: every query that can use a recommended view is rewritten.
  ViewRegistry chosen;
  for (const CandidateView& c : report.selected) {
    if (Status s = chosen.Register(c.def); !s.ok()) {
      std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  {
    Evaluator eval(&w.db, &chosen);
    for (const CandidateView& c : report.selected) {
      Table contents = Unwrap(eval.MaterializeView(c.def.name), "materialize");
      w.db.Put(c.def.name, std::move(contents));
    }
  }
  Optimizer optimizer(&w.db, &chosen);
  std::printf("\nworkload through the optimizer:\n");
  int rewritten_count = 0;
  for (const Query& q : workload) {
    OptimizeResult plan = Unwrap(optimizer.Optimize(q), "optimize");
    rewritten_count += plan.used_materialized_view;
    std::printf("  cost %8.0f -> %7.0f  [%s]\n", plan.cost_original,
                plan.cost_chosen,
                plan.used_materialized_view ? "uses recommended view"
                                            : "unchanged");
  }
  std::printf("%d/%zu queries now served from recommended views\n",
              rewritten_count, workload.size());
  return rewritten_count > 0 ? 0 : 1;
}
