// Quickstart: rewrite an aggregation query to use a materialized view.
//
// This walks Example 3.1 of the paper end to end: parse the query and the
// view from SQL text, ask the rewriter whether the view is usable
// (conditions C1-C4), print the rewriting it produces (steps S1-S4), and
// check on concrete data that the two queries return the same multiset.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "exec/evaluator.h"
#include "exec/table.h"
#include "ir/printer.h"
#include "parser/parser.h"
#include "rewrite/rewriter.h"

using namespace aqv;  // NOLINT: example brevity

namespace {

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

}  // namespace

int main() {
  // The paper's Example 3.1. FROM entries use the paper's explicit
  // notation "R1(A1, B1)", which renames every occurrence's columns apart.
  Query query = Unwrap(
      ParseQuery("SELECT A1, SUM(B1) FROM R1(A1, B1), R2(C1, D1) "
                 "WHERE A1 = C1 AND B1 = 6 AND D1 = 6 GROUPBY A1"),
      "parse query");

  ViewDef view = Unwrap(
      ParseView("CREATE VIEW V1 AS SELECT C2, D2 FROM R1(A2, B2), R2(C2, D2) "
                "WHERE A2 = C2 AND B2 = D2"),
      "parse view");

  std::printf("Q:  %s\n", ToSql(query).c_str());
  std::printf("V1: %s\n\n", ToSql(view).c_str());

  // Register the view and rewrite.
  ViewRegistry views;
  if (Status s = views.Register(view); !s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }
  Rewriter rewriter(&views);
  Query rewritten = Unwrap(rewriter.RewriteUsingView(query, "V1"), "rewrite");
  std::printf("Q' (uses V1): %s\n\n", ToSql(rewritten).c_str());

  // A small database instance with duplicates (multiset semantics!).
  Database db;
  Table r1({"A", "B"});
  for (auto [a, b] : {std::pair<int, int>{1, 6}, {1, 6}, {1, 3}, {2, 6},
                      {2, 2}, {3, 6}}) {
    r1.AddRowOrDie({Value::Int64(a), Value::Int64(b)});
  }
  db.Put("R1", std::move(r1));
  Table r2({"C", "D"});
  for (auto [c, d] : {std::pair<int, int>{1, 6}, {1, 6}, {2, 6}, {3, 1}}) {
    r2.AddRowOrDie({Value::Int64(c), Value::Int64(d)});
  }
  db.Put("R2", std::move(r2));

  // Evaluate both; the view is computed on demand from its definition (a
  // warehouse would keep it materialized — see the telephony example).
  Evaluator eval(&db, &views);
  Table original = Unwrap(eval.Execute(query), "run Q");
  Table via_view = Unwrap(eval.Execute(rewritten), "run Q'");

  std::printf("Q over base tables:\n%s\n", original.ToString().c_str());
  std::printf("Q' over the view:\n%s\n", via_view.ToString().c_str());
  std::printf("multiset-equivalent: %s\n",
              MultisetEqual(original, via_view) ? "yes" : "NO (bug!)");
  return MultisetEqual(original, via_view) ? 0 : 1;
}
