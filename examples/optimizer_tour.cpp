// A tour of the reasoning machinery an optimizer would call into:
//
//   1. condition closure and entailment (footnote 2 of the paper),
//   2. residual computation — condition C3's Conds',
//   3. HAVING-to-WHERE normalization (Section 3.3),
//   4. key-based set reasoning and many-to-1 mappings (Section 5,
//      Example 5.1),
//   5. enumerating *all* rewritings over a view library and picking the
//      cheapest with the cost model (Section 3.2 / Theorem 3.2).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "parser/parser.h"
#include "reason/closure.h"
#include "reason/having_normalize.h"
#include "reason/residual.h"
#include "rewrite/cost.h"
#include "rewrite/rewriter.h"
#include "rewrite/set_rewriter.h"
#include "workload/random_db.h"

using namespace aqv;  // NOLINT: example brevity

namespace {

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

Predicate P(const char* lhs, CmpOp op, const char* rhs) {
  return Predicate{Operand::Column(lhs), op, Operand::Column(rhs)};
}
Predicate PC(const char* lhs, CmpOp op, int64_t c) {
  return Predicate{Operand::Column(lhs), op, Operand::Constant(Value::Int64(c))};
}

void Header(const char* title) { std::printf("\n=== %s ===\n", title); }

}  // namespace

int main() {
  // ------------------------------------------------------------------
  Header("1. closure & entailment");
  std::vector<Predicate> conds = {P("A", CmpOp::kEq, "B"),
                                  P("B", CmpOp::kLe, "C"),
                                  PC("C", CmpOp::kLt, 10)};
  ConstraintClosure closure =
      Unwrap(ConstraintClosure::Build(conds), "build closure");
  struct {
    Predicate atom;
  } probes[] = {{P("A", CmpOp::kLe, "C")}, {PC("A", CmpOp::kLt, 10)},
                {PC("B", CmpOp::kNe, 12)}, {PC("A", CmpOp::kLt, 5)}};
  std::printf("given: A = B AND B <= C AND C < 10\n");
  for (const auto& probe : probes) {
    std::printf("  entails %-10s ? %s\n", probe.atom.ToString().c_str(),
                closure.Implies(probe.atom) ? "yes" : "no");
  }

  // ------------------------------------------------------------------
  Header("2. residual computation (condition C3)");
  std::vector<Predicate> query_conds = {P("A1", CmpOp::kEq, "C1"),
                                        PC("B1", CmpOp::kEq, 6),
                                        PC("D1", CmpOp::kEq, 6)};
  std::vector<Predicate> view_conds = {P("A1", CmpOp::kEq, "C1"),
                                       P("B1", CmpOp::kEq, "D1")};
  std::vector<Predicate> residual = Unwrap(
      ComputeResidual(query_conds, view_conds, {"C1", "D1"}), "residual");
  std::printf("Conds(Q)   = A1 = C1 AND B1 = 6 AND D1 = 6\n");
  std::printf("phi(Conds(V)) = A1 = C1 AND B1 = D1\n");
  std::printf("Conds'     =");
  for (const Predicate& p : residual) std::printf(" %s", p.ToString().c_str());
  std::printf("   (over the view's output columns only)\n");

  // ------------------------------------------------------------------
  Header("3. HAVING normalization (Section 3.3)");
  Query having_query = Unwrap(
      ParseQuery("SELECT A1, MAX(B1) FROM R(A1, B1) "
                 "GROUPBY A1 HAVING MAX(B1) > 10 AND A1 >= 2"),
      "parse");
  std::printf("before: %s\n", ToSql(having_query).c_str());
  int moved = NormalizeHaving(&having_query);
  std::printf("after:  %s   (%d conjuncts moved)\n",
              ToSql(having_query).c_str(), moved);

  // ------------------------------------------------------------------
  Header("4. keys enable many-to-1 mappings (Example 5.1)");
  Catalog catalog;
  TableDef r1("R1", {"A", "B", "C"});
  (void)r1.AddKeyByName({"A"});
  (void)catalog.AddTable(r1);
  Query q51 = Unwrap(
      ParseQuery("SELECT A1 FROM R1(A1, B1, C1) WHERE B1 = C1"), "parse q");
  ViewDef v51 = Unwrap(
      ParseView("CREATE VIEW V51 AS SELECT A2, A3 FROM "
                "R1(A2, B2, C2), R1(A3, B3, C3) WHERE B2 = C3"),
      "parse v");
  std::printf("Q result is a set: %s\n",
              IsSetQuery(q51, catalog, nullptr) ? "yes" : "no");
  ViewRegistry views51;
  (void)views51.Register(v51);
  Rewriter without_keys(&views51);
  std::printf("usable without keys: %s\n",
              without_keys.RewriteUsingView(q51, "V51").ok() ? "yes" : "no");
  RewriteOptions with_keys_opts;
  with_keys_opts.use_key_information = true;
  Rewriter with_keys(&views51, &catalog, with_keys_opts);
  Query q51_rw = Unwrap(with_keys.RewriteUsingView(q51, "V51"), "rewrite 5.1");
  std::printf("usable with keys:    yes -> %s\n", ToSql(q51_rw).c_str());

  // ------------------------------------------------------------------
  Header("5. enumerate all rewritings, pick the cheapest");
  Catalog cat2;
  (void)cat2.AddTable(TableDef("R", {"A", "B"}));
  (void)cat2.AddTable(TableDef("S", {"C", "D"}));
  Database db = MakeRandomDatabase(cat2, 2000, 200, 3);
  Query big_q = Unwrap(ParseQuery("SELECT A1, COUNT(D1) FROM R(A1, B1), "
                                  "S(C1, D1) WHERE B1 = C1 GROUPBY A1"),
                       "parse");
  ViewRegistry lib;
  (void)lib.Register(Unwrap(
      ParseView("CREATE VIEW VR AS SELECT A2, B2 FROM R(A2, B2)"), "vr"));
  (void)lib.Register(Unwrap(
      ParseView("CREATE VIEW VS AS SELECT C2, D2 FROM S(C2, D2)"), "vs"));
  (void)lib.Register(Unwrap(
      ParseView("CREATE VIEW VJOIN AS SELECT A2, D2 FROM R(A2, B2), "
                "S(C2, D2) WHERE B2 = C2"),
      "vjoin"));
  (void)lib.Register(Unwrap(
      ParseView("CREATE VIEW VAGG AS SELECT A2, COUNT(B2) FROM R(A2, B2) "
                "GROUPBY A2"),
      "vagg"));  // unusable here: the query's join column is aggregated away
  Rewriter rewriter(&lib);
  std::vector<Query> all = Unwrap(
      rewriter.EnumerateAllRewritings(big_q, {"VR", "VS", "VJOIN", "VAGG"}),
      "enumerate");
  // Materialize the library so the cost model can price the candidates.
  Evaluator eval(&db, &lib);
  for (const char* name : {"VR", "VS", "VJOIN", "VAGG"}) {
    db.Put(name, Unwrap(eval.MaterializeView(name), "materialize"));
  }
  CostModel model;
  std::printf("%zu distinct rewritings:\n", all.size());
  for (const Query& q : all) {
    std::printf("  cost %10.0f  %s\n", model.Estimate(q, db), ToSql(q).c_str());
  }
  int chosen = -1;
  Query best = ChooseCheapest(big_q, all, db, model, &chosen);
  std::printf("chosen (%s): %s\n",
              chosen < 0 ? "original" : "rewriting", ToSql(best).c_str());

  // Sanity: the chosen plan computes the same answer.
  Evaluator check(&db, &lib);
  Table lhs = Unwrap(check.Execute(big_q), "run Q");
  Table rhs = Unwrap(check.Execute(best), "run best");
  std::printf("answers agree: %s\n",
              MultisetEqual(lhs, rhs) ? "yes" : "NO (bug!)");
  return MultisetEqual(lhs, rhs) ? 0 : 1;
}
