// Warehouse maintenance scenario: the telephony warehouse of Example 1.1
// receives nightly batches of new calls. The monthly summary view V1 is
// kept fresh *incrementally* (the counting algorithm specialized to this
// dialect), and the business query keeps being answered from the view —
// demonstrating the full life cycle the paper's motivation presumes:
//
//     load -> materialize V1 -> [batch -> maintain V1 -> query V1]*
//
// After every batch, the maintained view is checked against a from-scratch
// recomputation.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "exec/evaluator.h"
#include "ir/printer.h"
#include "maintain/incremental.h"
#include "rewrite/rewriter.h"
#include "workload/telephony.h"

using namespace aqv;  // NOLINT: example brevity

namespace {

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

Delta NightlyBatch(int day, int first_id, int size) {
  std::mt19937_64 rng(1000 + day);
  std::uniform_int_distribution<int> plan(0, 19);
  std::uniform_int_distribution<int> cust(0, 999);
  std::uniform_real_distribution<double> charge(0.05, 10.0);
  Delta d;
  for (int i = 0; i < size; ++i) {
    d.inserts["Calls"].push_back(
        {Value::Int64(first_id + i), Value::Int64(cust(rng)),
         Value::Int64(plan(rng)), Value::Int64(day), Value::Int64(12),
         Value::Int64(1995), Value::Double(charge(rng))});
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const int base_calls = argc > 1 ? std::atoi(argv[1]) : 150000;
  const int batch_size = 2000;

  TelephonyParams params;
  params.num_calls = base_calls;
  params.earnings_threshold = 0.55 * params.max_charge * base_calls /
                              (params.num_plans * params.num_years);
  TelephonyWorkload w = MakeTelephonyWorkload(params);

  // Initial materialization.
  Evaluator eval(&w.db, &w.views);
  Table v1 = Unwrap(eval.MaterializeView("V1"), "materialize V1");
  std::printf("initial load: %d calls, V1 has %zu rows\n", base_calls,
              v1.num_rows());

  const ViewDef* def = Unwrap(w.views.Get("V1"), "get V1");
  IncrementalMaintainer maintainer =
      Unwrap(IncrementalMaintainer::Create(*def), "create maintainer");
  Rewriter rewriter(&w.views);
  Query business_query =
      Unwrap(rewriter.RewriteUsingView(w.query, "V1"), "rewrite Q");
  std::printf("business query (over V1): %s\n\n", ToSql(business_query).c_str());

  int next_call_id = base_calls;
  for (int day = 1; day <= 5; ++day) {
    Delta batch = NightlyBatch(day, next_call_id, batch_size);
    next_call_id += batch_size;

    // Maintain the view incrementally...
    auto start = std::chrono::steady_clock::now();
    if (Status s = maintainer.Apply(batch, w.db, &v1); !s.ok()) {
      std::fprintf(stderr, "maintain: %s\n", s.ToString().c_str());
      return 1;
    }
    double maintain_ms = MillisSince(start);

    // ...then advance the base tables and compare against recomputation.
    if (Status s = ApplyDeltaToBase(batch, &w.db); !s.ok()) {
      std::fprintf(stderr, "apply base: %s\n", s.ToString().c_str());
      return 1;
    }
    start = std::chrono::steady_clock::now();
    Evaluator fresh(&w.db, &w.views);
    Table recomputed = Unwrap(fresh.MaterializeView("V1"), "recompute V1");
    double recompute_ms = MillisSince(start);
    bool consistent = MultisetAlmostEqual(v1, recomputed);

    // Serve the business query from the maintained view.
    Database serving = w.db;
    serving.Put("V1", v1);
    Evaluator serve(&serving, &w.views);
    start = std::chrono::steady_clock::now();
    Table answer = Unwrap(serve.Execute(business_query), "query V1");
    double query_ms = MillisSince(start);

    std::printf(
        "day %d: +%d calls | maintain %6.2f ms vs recompute %7.2f ms "
        "(%.0fx) | query %5.2f ms, %zu plans | consistent: %s\n",
        day, batch_size, maintain_ms, recompute_ms, recompute_ms / maintain_ms,
        query_ms, answer.num_rows(), consistent ? "yes" : "NO");
    if (!consistent) return 1;
  }
  std::printf("\nview stayed consistent across all batches\n");
  return 0;
}
